#ifndef EINSQL_TRIPLESTORE_QUERY_H_
#define EINSQL_TRIPLESTORE_QUERY_H_

#include <string>
#include <vector>

#include "backends/backend.h"
#include "core/path.h"
#include "triplestore/store.h"

namespace einsql::triplestore {

/// A SPARQL-style triple pattern: each position is either a term or a
/// variable marked by a leading '?'.
struct TriplePattern {
  std::string s, p, o;
};

/// One result row of an aggregation query: a term and its count.
struct CountedTerm {
  std::string term;
  double count = 0.0;
};

/// The SPARQL query of Listing 7 as triple patterns plus a selected
/// variable: "list all athletes who have won a gold medal and the number of
/// gold medals they have won, in descending order."
struct PatternQuery {
  std::vector<TriplePattern> patterns;
  std::string select_variable;  // with '?', e.g. "?name"
};

/// Compiles a basic-graph-pattern query to a single portable einsum SQL
/// query over the triple table (§4.1, Listing 8): each pattern becomes a
/// slice CTE of T, shared variables become shared einsum indices, and the
/// selected variable is the output index whose SUM(val) is the match count.
/// Terms absent from the dictionary yield a slice that matches nothing.
Result<std::string> CompileQueryToSql(const TripleStore& store,
                                      const PatternQuery& query,
                                      PathAlgorithm path = PathAlgorithm::kAuto,
                                      const std::string& table = "T");

/// Runs the compiled query on a backend (the triple table must already be
/// loaded via TripleStore::LoadInto) and maps ids back to terms; rows come
/// back ordered by descending count.
Result<std::vector<CountedTerm>> AnswerWithSql(
    SqlBackend* backend, const TripleStore& store, const PatternQuery& query,
    PathAlgorithm path = PathAlgorithm::kAuto, const std::string& table = "T");

/// Interpreted baseline standing in for RDFLib: backtracking pattern
/// matching over the raw triple list with no indexes.
Result<std::vector<CountedTerm>> AnswerNaive(const TripleStore& store,
                                             const PatternQuery& query);

/// A query projecting several variables at once (SPARQL SELECT with
/// multiple variables): each result row binds every selected variable plus
/// the match count. The einsum output term simply grows one index per
/// selected variable.
struct MultiPatternQuery {
  std::vector<TriplePattern> patterns;
  std::vector<std::string> select_variables;  // each with '?'
};

/// One multi-select result row.
struct CountedRow {
  std::vector<std::string> terms;  // parallel to select_variables
  double count = 0.0;
};

/// Compiles/answers multi-variable queries; same machinery as the
/// single-variable forms, with a rank-k output tensor.
Result<std::string> CompileMultiQueryToSql(
    const TripleStore& store, const MultiPatternQuery& query,
    PathAlgorithm path = PathAlgorithm::kAuto, const std::string& table = "T");
Result<std::vector<CountedRow>> AnswerMultiWithSql(
    SqlBackend* backend, const TripleStore& store,
    const MultiPatternQuery& query, PathAlgorithm path = PathAlgorithm::kAuto,
    const std::string& table = "T");
Result<std::vector<CountedRow>> AnswerMultiNaive(
    const TripleStore& store, const MultiPatternQuery& query);

/// The gold-medal query of Listing 7 over the synthetic Olympic dataset.
PatternQuery GoldMedalQuery();

}  // namespace einsql::triplestore

#endif  // EINSQL_TRIPLESTORE_QUERY_H_
