#include "triplestore/generator.h"

#include "common/rng.h"
#include "common/str_util.h"

namespace einsql::triplestore {

TripleStore GenerateOlympics(const OlympicsOptions& options) {
  Rng rng(options.seed);
  TripleStore store;
  // Pre-intern predicates and medal terms (mirrors the wallscope/rdfs
  // vocabulary of the paper's Listing 7).
  const std::string kAthlete = "walls:athlete";
  const std::string kMedal = "walls:medal";
  const std::string kGames = "walls:games";
  const std::string kEvent = "walls:event";
  const std::string kLabel = "rdfs:label";
  const std::string kMedals[3] = {"medal:Gold", "medal:Silver",
                                  "medal:Bronze"};

  int64_t instance_counter = 0;
  for (int athlete = 0; athlete < options.num_athletes; ++athlete) {
    const std::string athlete_term = StrCat("athlete:", athlete);
    store.Add(athlete_term, kLabel, StrCat("\"Athlete ", athlete, "\""));
    for (int result = 0; result < options.results_per_athlete; ++result) {
      const std::string instance =
          StrCat("instance:", instance_counter++);
      store.Add(instance, kAthlete, athlete_term);
      store.Add(instance, kGames,
                StrCat("games:", rng.UniformInt(0, options.num_games - 1)));
      store.Add(instance, kEvent,
                StrCat("event:", rng.UniformInt(0, options.num_events - 1)));
      if (rng.Bernoulli(options.medal_fraction)) {
        store.Add(instance, kMedal,
                  kMedals[rng.UniformInt(0, 2)]);
      }
    }
  }
  return store;
}

}  // namespace einsql::triplestore
