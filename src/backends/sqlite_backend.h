#ifndef EINSQL_BACKENDS_SQLITE_BACKEND_H_
#define EINSQL_BACKENDS_SQLITE_BACKEND_H_

#include <string>

#include "backends/backend.h"

struct sqlite3;

namespace einsql {

/// SqlBackend over an in-memory SQLite database — the real, embedded engine
/// the paper evaluates. Planning time is measured as sqlite3_prepare_v2
/// (statement compilation, SQLite's query planner), execution time as the
/// stepping of the prepared statement, matching the paper's methodology.
class SqliteBackend : public SqlBackend {
 public:
  /// Opens an in-memory database; aborts the process on open failure only
  /// via error Status from the factory.
  static Result<std::unique_ptr<SqliteBackend>> Open();

  ~SqliteBackend() override;
  SqliteBackend(const SqliteBackend&) = delete;
  SqliteBackend& operator=(const SqliteBackend&) = delete;

  std::string name() const override { return "sqlite"; }
  Status Execute(const std::string& sql) override;
  Result<minidb::Relation> Query(const std::string& sql) override;
  BackendStats last_stats() const override { return stats_; }
  /// Emits "sqlite prepare" / "sqlite step" spans per Query. SQLite hides
  /// CTE materialization inside its planner, so no per-CTE spans (and
  /// cte_timings stays empty).
  void set_trace(Trace* trace) override { trace_ = trace; }
  Status CreateCooTable(const std::string& name, int rank,
                        bool complex_values) override;
  Status LoadCooTensor(const std::string& name,
                       const CooTensor& tensor) override;
  Status LoadComplexCooTensor(const std::string& name,
                              const ComplexCooTensor& tensor) override;

  /// The SQLite library version string (diagnostics).
  static std::string LibraryVersion();

 private:
  SqliteBackend() = default;

  sqlite3* db_ = nullptr;
  BackendStats stats_;
  Trace* trace_ = nullptr;
};

}  // namespace einsql

#endif  // EINSQL_BACKENDS_SQLITE_BACKEND_H_
