#ifndef EINSQL_BACKENDS_EINSUM_ENGINE_H_
#define EINSQL_BACKENDS_EINSUM_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "backends/backend.h"
#include "core/path.h"
#include "core/program.h"
#include "core/sqlgen.h"

namespace einsql {

/// Options for a high-level Einstein summation call.
struct EinsumOptions {
  /// Contraction-path search strategy (§3.3).
  PathAlgorithm path = PathAlgorithm::kAuto;
  /// Decompose into one CTE per pairwise contraction; false emits the
  /// single flat query of §3.2 (the naive baseline).
  bool decompose = true;
  /// Omit redundant SUM/GROUP BY when a step performs no aggregation.
  bool simplify = true;
  /// Result entries with magnitude <= epsilon are dropped.
  double epsilon = 0.0;
  /// Optional span sink: when set, the pipeline emits nested spans for
  /// format parsing, shape validation, path optimization (chosen algorithm
  /// and predicted flop cost as attributes), SQL generation, backend
  /// execution (per-CTE materialization where observable), and result
  /// parsing. Not owned; may be null.
  Trace* trace = nullptr;
};

/// A complete Einstein summation engine: give it a format string and COO
/// tensors, get the contracted COO tensor back. Implementations: SQL-based
/// (the paper's contribution, over any SqlBackend) and dense in-memory (the
/// opt_einsum/NumPy stand-in).
class EinsumEngine {
 public:
  virtual ~EinsumEngine() = default;

  /// Engine name for benchmark output.
  virtual std::string name() const = 0;

  /// Evaluates a prebuilt contraction program. This is the benchmark entry
  /// point: the paper passes a precomputed contraction sequence to
  /// opt_einsum so that path search is excluded from the measured loop, and
  /// the same program can be reused with fresh tensors of identical shapes.
  virtual Result<CooTensor> RunProgram(
      const ContractionProgram& program,
      const std::vector<const CooTensor*>& tensors,
      const EinsumOptions& options) = 0;

  /// Complex counterpart (§4.4).
  virtual Result<ComplexCooTensor> RunComplexProgram(
      const ContractionProgram& program,
      const std::vector<const ComplexCooTensor*>& tensors,
      const EinsumOptions& options) = 0;

  /// Evaluates a programmatically built spec over real-valued tensors.
  /// The spec form is required for expressions whose label count exceeds
  /// the 52 letters a textual format string can spell (SAT networks, §4.2).
  Result<CooTensor> EinsumSpecified(const EinsumSpec& spec,
                                    const std::vector<const CooTensor*>& tensors,
                                    const EinsumOptions& options);
  Result<ComplexCooTensor> ComplexEinsumSpecified(
      const EinsumSpec& spec,
      const std::vector<const ComplexCooTensor*>& tensors,
      const EinsumOptions& options);

  /// Convenience: parses `format` first.
  Result<CooTensor> Einsum(const std::string& format,
                           const std::vector<const CooTensor*>& tensors,
                           const EinsumOptions& options = {});
  Result<ComplexCooTensor> ComplexEinsum(
      const std::string& format,
      const std::vector<const ComplexCooTensor*>& tensors,
      const EinsumOptions& options = {});
};

/// Einstein summation by SQL query generation and execution: builds the
/// contraction program, emits a portable decomposed SQL query with the
/// tensors inlined as VALUES CTEs, runs it on the backend, and parses the
/// (i0..ik, val) result rows back into a COO tensor.
class SqlEinsumEngine : public EinsumEngine {
 public:
  /// Does not take ownership of `backend`.
  explicit SqlEinsumEngine(SqlBackend* backend) : backend_(backend) {}

  std::string name() const override { return backend_->name(); }
  Result<CooTensor> RunProgram(const ContractionProgram& program,
                               const std::vector<const CooTensor*>& tensors,
                               const EinsumOptions& options) override;
  Result<ComplexCooTensor> RunComplexProgram(
      const ContractionProgram& program,
      const std::vector<const ComplexCooTensor*>& tensors,
      const EinsumOptions& options) override;

  SqlBackend* backend() { return backend_; }

 private:
  SqlBackend* backend_;
};

/// Einstein summation by dense pairwise contraction, the stand-in for
/// opt_einsum with a NumPy backend (same contraction path as the SQL
/// engines, per the paper's methodology).
class DenseEinsumEngine : public EinsumEngine {
 public:
  std::string name() const override { return "dense"; }
  Result<CooTensor> RunProgram(const ContractionProgram& program,
                               const std::vector<const CooTensor*>& tensors,
                               const EinsumOptions& options) override;
  Result<ComplexCooTensor> RunComplexProgram(
      const ContractionProgram& program,
      const std::vector<const ComplexCooTensor*>& tensors,
      const EinsumOptions& options) override;
};

/// Einstein summation by native sparse contraction: hash joins on shared
/// indices and hash aggregation on output indices, directly on COO storage.
/// The in-memory analog of what the generated SQL makes the DBMS do, and
/// the strategy of tensor-native triplestores (Tentris, §6). Shines on
/// hypersparse problems where densification is infeasible.
class SparseEinsumEngine : public EinsumEngine {
 public:
  std::string name() const override { return "sparse"; }
  Result<CooTensor> RunProgram(const ContractionProgram& program,
                               const std::vector<const CooTensor*>& tensors,
                               const EinsumOptions& options) override;
  Result<ComplexCooTensor> RunComplexProgram(
      const ContractionProgram& program,
      const std::vector<const ComplexCooTensor*>& tensors,
      const EinsumOptions& options) override;
};

/// Parses a SQL einsum result relation (columns i0..i{k-1} then val, or
/// re/im) into a COO tensor of the given output shape. NULL values (a
/// scalar SUM over an empty input) contribute nothing.
Result<CooTensor> ParseCooResult(const minidb::Relation& relation,
                                 const Shape& output_shape, double epsilon);
Result<ComplexCooTensor> ParseComplexCooResult(
    const minidb::Relation& relation, const Shape& output_shape,
    double epsilon);

}  // namespace einsql

#endif  // EINSQL_BACKENDS_EINSUM_ENGINE_H_
