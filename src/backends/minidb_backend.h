#ifndef EINSQL_BACKENDS_MINIDB_BACKEND_H_
#define EINSQL_BACKENDS_MINIDB_BACKEND_H_

#include <string>

#include "backends/backend.h"
#include "minidb/database.h"

namespace einsql {

/// SqlBackend over the in-repo MiniDB engine. The optimizer mode selects
/// which DBMS archetype of the paper's evaluation the instance models:
/// kNone ≈ DuckDB with optimizations disabled, kGreedy ≈ a lightweight
/// engine honoring the CTE decomposition, kAggressive ≈ an optimizing
/// in-memory system, kExhaustive ≈ an optimizer that cannot finish planning
/// large decomposed einsum queries.
class MiniDbBackend : public SqlBackend {
 public:
  explicit MiniDbBackend(
      minidb::PlannerOptions options = minidb::PlannerOptions{});

  std::string name() const override;
  Status Execute(const std::string& sql) override;
  Result<minidb::Relation> Query(const std::string& sql) override;
  BackendStats last_stats() const override { return stats_; }
  /// Forwards the sink to the engine: parse/plan/execute phases, per-CTE
  /// materialization, and per-operator spans all land in `trace`.
  void set_trace(Trace* trace) override { db_.set_trace(trace); }
  Status CreateCooTable(const std::string& name, int rank,
                        bool complex_values) override;
  Status LoadCooTensor(const std::string& name,
                       const CooTensor& tensor) override;
  Status LoadComplexCooTensor(const std::string& name,
                              const ComplexCooTensor& tensor) override;

  /// Enables morsel-driven intra-operator parallelism (and parallel CTE
  /// materialization) on `threads` workers; 0 means hardware concurrency.
  /// Results stay deterministic: for a fixed morsel size, the thread count
  /// never changes query output.
  void set_threads(int threads) {
    db_.executor_options().parallel_operators = true;
    db_.executor_options().parallel_ctes = true;
    db_.executor_options().num_threads = threads;
  }

  /// Enables column-at-a-time (vectorized) execution. Results are
  /// identical to the row interpreter for fixed morsel/parallel settings;
  /// unsupported expressions fall back per plan node.
  void set_vectorized(bool on = true) {
    db_.executor_options().vectorized = on;
  }

  /// Direct access to the underlying engine (tests, plan inspection).
  minidb::Database& database() { return db_; }

 private:
  minidb::Database db_;
  BackendStats stats_;
};

}  // namespace einsql

#endif  // EINSQL_BACKENDS_MINIDB_BACKEND_H_
