#include "backends/minidb_backend.h"

#include "common/metrics.h"
#include "common/str_util.h"

namespace einsql {

namespace {

// Feeds every operator's cardinality q-error into the engine-wide
// estimation-quality histogram; EXPLAIN ANALYZE shows single queries, the
// histogram shows the planner's aggregate accuracy over a whole run.
void RecordEstimationErrors(const minidb::OperatorProfile& op,
                            Histogram* qerror) {
  qerror->Record(op.est_error());
  for (const auto& child : op.children) {
    RecordEstimationErrors(child, qerror);
  }
}

std::vector<minidb::Column> CooColumns(int rank, bool complex_values) {
  std::vector<minidb::Column> columns;
  for (int d = 0; d < rank; ++d) {
    columns.push_back({StrCat("i", d), minidb::ValueType::kInt});
  }
  if (complex_values) {
    columns.push_back({"re", minidb::ValueType::kDouble});
    columns.push_back({"im", minidb::ValueType::kDouble});
  } else {
    columns.push_back({"val", minidb::ValueType::kDouble});
  }
  return columns;
}

}  // namespace

MiniDbBackend::MiniDbBackend(minidb::PlannerOptions options)
    : db_(options) {}

std::string MiniDbBackend::name() const {
  return StrCat("minidb-",
                minidb::OptimizerModeToString(db_.options().mode));
}

Status MiniDbBackend::Execute(const std::string& sql) {
  EINSQL_ASSIGN_OR_RETURN(minidb::QueryResult result, db_.Execute(sql));
  stats_ = BackendStats{};
  stats_.planning_seconds = result.stats.planning_seconds();
  stats_.execution_seconds = result.stats.exec_seconds;
  return Status::OK();
}

Result<minidb::Relation> MiniDbBackend::Query(const std::string& sql) {
  EINSQL_ASSIGN_OR_RETURN(minidb::QueryResult result, db_.Execute(sql));
  stats_ = BackendStats{};
  stats_.planning_seconds = result.stats.planning_seconds();
  stats_.execution_seconds = result.stats.exec_seconds;
  stats_.result_rows = static_cast<int64_t>(result.relation.rows.size());
  if (const minidb::QueryProfile* profile = db_.last_profile()) {
    stats_.threads_used = profile->max_threads_used();
    stats_.peak_memory_bytes = profile->peak_memory_bytes;
    stats_.morsels_executed = profile->morsels_executed;
    stats_.vectorized_morsels = profile->vectorized_morsels;
    stats_.row_fallback_morsels = profile->row_fallback_morsels;
    stats_.cte_timings.reserve(profile->ctes.size());
    for (const auto& cte : profile->ctes) {
      stats_.cte_timings.push_back(
          {cte.name, cte.wall_seconds, cte.rows, cte.est_rows});
    }
    static Histogram* qerror =
        MetricsRegistry::Default().histogram("minidb.qerror");
    RecordEstimationErrors(profile->root, qerror);
    for (const auto& cte : profile->ctes) {
      RecordEstimationErrors(cte.root, qerror);
    }
  }
  return result.relation;
}

Status MiniDbBackend::CreateCooTable(const std::string& name, int rank,
                                     bool complex_values) {
  EINSQL_RETURN_IF_ERROR(db_.catalog().DropTable(name, /*if_exists=*/true));
  return db_.CreateTable(name, CooColumns(rank, complex_values));
}

Status MiniDbBackend::LoadCooTensor(const std::string& name,
                                    const CooTensor& tensor) {
  std::vector<minidb::Row> rows;
  rows.reserve(tensor.nnz());
  const int r = tensor.rank();
  for (int64_t k = 0; k < tensor.nnz(); ++k) {
    minidb::Row row;
    row.reserve(r + 1);
    for (int d = 0; d < r; ++d) {
      row.emplace_back(tensor.raw_coords()[k * r + d]);
    }
    row.emplace_back(tensor.ValueAt(k));
    rows.push_back(std::move(row));
  }
  return db_.BulkInsert(name, std::move(rows));
}

Status MiniDbBackend::LoadComplexCooTensor(const std::string& name,
                                           const ComplexCooTensor& tensor) {
  std::vector<minidb::Row> rows;
  rows.reserve(tensor.nnz());
  const int r = tensor.rank();
  for (int64_t k = 0; k < tensor.nnz(); ++k) {
    minidb::Row row;
    row.reserve(r + 2);
    for (int d = 0; d < r; ++d) {
      row.emplace_back(tensor.raw_coords()[k * r + d]);
    }
    row.emplace_back(tensor.ValueAt(k).real());
    row.emplace_back(tensor.ValueAt(k).imag());
    rows.push_back(std::move(row));
  }
  return db_.BulkInsert(name, std::move(rows));
}

}  // namespace einsql
