#include "backends/sqlite_backend.h"

#include <sqlite3.h>

#include <memory>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/str_util.h"

namespace einsql {

namespace {

Status SqliteError(sqlite3* db, const char* what) {
  return Status::Internal("sqlite ", what, ": ", sqlite3_errmsg(db));
}

// RAII wrapper for prepared statements.
struct StmtCloser {
  void operator()(sqlite3_stmt* stmt) const { sqlite3_finalize(stmt); }
};
using StmtPtr = std::unique_ptr<sqlite3_stmt, StmtCloser>;

}  // namespace

Result<std::unique_ptr<SqliteBackend>> SqliteBackend::Open() {
  std::unique_ptr<SqliteBackend> backend(new SqliteBackend());
  if (sqlite3_open(":memory:", &backend->db_) != SQLITE_OK) {
    return Status::Internal("cannot open in-memory sqlite database");
  }
  return backend;
}

SqliteBackend::~SqliteBackend() {
  if (db_ != nullptr) sqlite3_close(db_);
}

std::string SqliteBackend::LibraryVersion() { return sqlite3_libversion(); }

Status SqliteBackend::Execute(const std::string& sql) {
  char* error = nullptr;
  if (sqlite3_exec(db_, sql.c_str(), nullptr, nullptr, &error) != SQLITE_OK) {
    std::string message = error != nullptr ? error : "unknown error";
    sqlite3_free(error);
    return Status::Internal("sqlite exec: ", message);
  }
  return Status::OK();
}

Result<minidb::Relation> SqliteBackend::Query(const std::string& sql) {
  stats_ = BackendStats{};
  // Reset the library-wide high-water mark so it measures this query only.
  // sqlite3_memory_highwater is process-global; concurrent queries on
  // other connections would bleed in, but the engine opens one connection
  // per backend and queries it from one thread.
  sqlite3_memory_highwater(/*resetFlag=*/1);
  static Counter* queries =
      MetricsRegistry::Default().counter("sqlite.queries");
  static Histogram* exec_seconds =
      MetricsRegistry::Default().histogram("sqlite.exec_seconds");
  Stopwatch watch;
  ScopedSpan prepare_span(trace_, "sqlite prepare");
  sqlite3_stmt* raw = nullptr;
  if (sqlite3_prepare_v2(db_, sql.c_str(), -1, &raw, nullptr) != SQLITE_OK) {
    return SqliteError(db_, "prepare");
  }
  StmtPtr stmt(raw);
  prepare_span.SetAttribute("sql_bytes", static_cast<int64_t>(sql.size()));
  prepare_span.End();
  stats_.planning_seconds = watch.ElapsedSeconds();

  watch.Restart();
  ScopedSpan step_span(trace_, "sqlite step");
  minidb::Relation relation;
  const int columns = sqlite3_column_count(stmt.get());
  for (int c = 0; c < columns; ++c) {
    const char* name = sqlite3_column_name(stmt.get(), c);
    relation.columns.push_back(
        {name != nullptr ? name : StrCat("c", c), minidb::ValueType::kDouble});
  }
  while (true) {
    const int rc = sqlite3_step(stmt.get());
    if (rc == SQLITE_DONE) break;
    if (rc != SQLITE_ROW) return SqliteError(db_, "step");
    minidb::Row row;
    row.reserve(columns);
    for (int c = 0; c < columns; ++c) {
      switch (sqlite3_column_type(stmt.get(), c)) {
        case SQLITE_INTEGER:
          row.emplace_back(
              static_cast<int64_t>(sqlite3_column_int64(stmt.get(), c)));
          break;
        case SQLITE_FLOAT:
          row.emplace_back(sqlite3_column_double(stmt.get(), c));
          break;
        case SQLITE_NULL:
          row.emplace_back(minidb::Null{});
          break;
        default: {
          const unsigned char* text = sqlite3_column_text(stmt.get(), c);
          row.emplace_back(std::string(
              text != nullptr ? reinterpret_cast<const char*>(text) : ""));
          break;
        }
      }
    }
    relation.rows.push_back(std::move(row));
  }
  stats_.execution_seconds = watch.ElapsedSeconds();
  stats_.result_rows = static_cast<int64_t>(relation.rows.size());
  stats_.peak_memory_bytes = sqlite3_memory_highwater(/*resetFlag=*/0);
  queries->Increment();
  exec_seconds->Record(stats_.execution_seconds);
  step_span.SetAttribute("rows", stats_.result_rows);
  return relation;
}

Status SqliteBackend::CreateCooTable(const std::string& name, int rank,
                                     bool complex_values) {
  EINSQL_RETURN_IF_ERROR(Execute(StrCat("DROP TABLE IF EXISTS ", name)));
  std::string ddl = StrCat("CREATE TABLE ", name, " (");
  for (int d = 0; d < rank; ++d) ddl += StrCat("i", d, " INT, ");
  ddl += complex_values ? "re DOUBLE, im DOUBLE)" : "val DOUBLE)";
  return Execute(ddl);
}

namespace {

template <typename V, typename BindValues>
Status LoadRows(sqlite3* db, const std::string& name, const Coo<V>& tensor,
                int value_columns, BindValues bind_values) {
  const int r = tensor.rank();
  std::string sql = StrCat("INSERT INTO ", name, " VALUES (");
  for (int c = 0; c < r + value_columns; ++c) {
    sql += c > 0 ? ", ?" : "?";
  }
  sql += ")";
  sqlite3_stmt* raw = nullptr;
  if (sqlite3_prepare_v2(db, sql.c_str(), -1, &raw, nullptr) != SQLITE_OK) {
    return SqliteError(db, "prepare insert");
  }
  StmtPtr stmt(raw);
  if (sqlite3_exec(db, "BEGIN", nullptr, nullptr, nullptr) != SQLITE_OK) {
    return SqliteError(db, "begin");
  }
  for (int64_t k = 0; k < tensor.nnz(); ++k) {
    for (int d = 0; d < r; ++d) {
      sqlite3_bind_int64(stmt.get(), d + 1, tensor.raw_coords()[k * r + d]);
    }
    bind_values(stmt.get(), r, tensor.ValueAt(k));
    if (sqlite3_step(stmt.get()) != SQLITE_DONE) {
      return SqliteError(db, "insert step");
    }
    sqlite3_reset(stmt.get());
  }
  if (sqlite3_exec(db, "COMMIT", nullptr, nullptr, nullptr) != SQLITE_OK) {
    return SqliteError(db, "commit");
  }
  return Status::OK();
}

}  // namespace

Status SqliteBackend::LoadCooTensor(const std::string& name,
                                    const CooTensor& tensor) {
  return LoadRows(db_, name, tensor, 1,
                  [](sqlite3_stmt* stmt, int rank, double value) {
                    sqlite3_bind_double(stmt, rank + 1, value);
                  });
}

Status SqliteBackend::LoadComplexCooTensor(const std::string& name,
                                           const ComplexCooTensor& tensor) {
  return LoadRows(db_, name, tensor, 2,
                  [](sqlite3_stmt* stmt, int rank, std::complex<double> v) {
                    sqlite3_bind_double(stmt, rank + 1, v.real());
                    sqlite3_bind_double(stmt, rank + 2, v.imag());
                  });
}

}  // namespace einsql
