#include "backends/einsum_engine.h"

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "core/dense_exec.h"
#include "core/sparse_exec.h"

namespace einsql {

namespace {

/// Pipeline-wide instruments: how many contraction programs the process
/// planned, how large they are, and what cost the planner predicted.
struct PipelineMetrics {
  Counter* programs_built;
  Counter* steps_planned;
  Histogram* est_flops;
  Counter* sql_programs;
  Counter* sql_bytes;
  Histogram* sql_gen_seconds;
};

PipelineMetrics& Pipeline() {
  static PipelineMetrics metrics = [] {
    MetricsRegistry& registry = MetricsRegistry::Default();
    PipelineMetrics m;
    m.programs_built = registry.counter("einsum.programs_built");
    m.steps_planned = registry.counter("einsum.steps_planned");
    m.est_flops = registry.histogram("einsum.est_flops");
    m.sql_programs = registry.counter("einsum.sql_programs");
    m.sql_bytes = registry.counter("einsum.sql_bytes");
    m.sql_gen_seconds = registry.histogram("einsum.sql_gen_seconds");
    return m;
  }();
  return metrics;
}

// Spans "path optimization" around BuildProgram, recording the chosen
// algorithm and its predicted cost as attributes.
Result<ContractionProgram> BuildProgramTraced(const EinsumSpec& spec,
                                              const std::vector<Shape>& shapes,
                                              const EinsumOptions& options) {
  ScopedSpan span(options.trace, "path optimization");
  EINSQL_ASSIGN_OR_RETURN(ContractionProgram program,
                          BuildProgram(spec, shapes, options.path));
  span.SetAttribute("algorithm", PathAlgorithmToString(program.algorithm));
  span.SetAttribute("est_flops", program.est_flops);
  span.SetAttribute("steps", static_cast<int64_t>(program.steps.size()));
  PipelineMetrics& metrics = Pipeline();
  metrics.programs_built->Increment();
  metrics.steps_planned->Increment(
      static_cast<int64_t>(program.steps.size()));
  metrics.est_flops->Record(program.est_flops);
  return program;
}

}  // namespace

Result<CooTensor> EinsumEngine::Einsum(
    const std::string& format, const std::vector<const CooTensor*>& tensors,
    const EinsumOptions& options) {
  ScopedSpan parse_span(options.trace, "parse format");
  EINSQL_ASSIGN_OR_RETURN(EinsumSpec spec, ParseEinsumFormat(format));
  parse_span.End();
  return EinsumSpecified(spec, tensors, options);
}

Result<ComplexCooTensor> EinsumEngine::ComplexEinsum(
    const std::string& format,
    const std::vector<const ComplexCooTensor*>& tensors,
    const EinsumOptions& options) {
  ScopedSpan parse_span(options.trace, "parse format");
  EINSQL_ASSIGN_OR_RETURN(EinsumSpec spec, ParseEinsumFormat(format));
  parse_span.End();
  return ComplexEinsumSpecified(spec, tensors, options);
}

Result<CooTensor> EinsumEngine::EinsumSpecified(
    const EinsumSpec& spec, const std::vector<const CooTensor*>& tensors,
    const EinsumOptions& options) {
  std::vector<Shape> shapes;
  shapes.reserve(tensors.size());
  for (const CooTensor* t : tensors) {
    if (t == nullptr) return Status::InvalidArgument("null tensor pointer");
    shapes.push_back(t->shape());
  }
  EINSQL_ASSIGN_OR_RETURN(ContractionProgram program,
                          BuildProgramTraced(spec, shapes, options));
  return RunProgram(program, tensors, options);
}

Result<ComplexCooTensor> EinsumEngine::ComplexEinsumSpecified(
    const EinsumSpec& spec,
    const std::vector<const ComplexCooTensor*>& tensors,
    const EinsumOptions& options) {
  std::vector<Shape> shapes;
  shapes.reserve(tensors.size());
  for (const ComplexCooTensor* t : tensors) {
    if (t == nullptr) return Status::InvalidArgument("null tensor pointer");
    shapes.push_back(t->shape());
  }
  EINSQL_ASSIGN_OR_RETURN(ContractionProgram program,
                          BuildProgramTraced(spec, shapes, options));
  return RunComplexProgram(program, tensors, options);
}

namespace {

// Validates that `tensors` are compatible with the prebuilt program: the
// program may be reused with fresh tensors of identical shapes.
template <typename V>
Status CheckShapes(const ContractionProgram& program,
                   const std::vector<const Coo<V>*>& tensors) {
  if (static_cast<int>(tensors.size()) != program.num_inputs) {
    return Status::InvalidArgument("expected ", program.num_inputs,
                                   " tensors, got ", tensors.size());
  }
  std::vector<Shape> shapes;
  shapes.reserve(tensors.size());
  for (const Coo<V>* t : tensors) {
    if (t == nullptr) return Status::InvalidArgument("null tensor pointer");
    shapes.push_back(t->shape());
  }
  return IndexExtents(program.spec, shapes).status();
}

SqlGenOptions ToSqlGenOptions(const EinsumOptions& options) {
  SqlGenOptions sql;
  sql.decompose = options.decompose;
  sql.simplify = options.simplify;
  return sql;
}

template <typename V>
Result<Coo<V>> ParseResultImpl(const minidb::Relation& relation,
                               const Shape& output_shape, double epsilon) {
  constexpr bool kComplex = !std::is_same_v<V, double>;
  const int rank = static_cast<int>(output_shape.size());
  const int value_columns = kComplex ? 2 : 1;
  if (relation.num_columns() != rank + value_columns) {
    return Status::InvalidArgument(
        "result relation has ", relation.num_columns(),
        " columns; expected ", rank + value_columns);
  }
  Coo<V> out(output_shape);
  std::vector<int64_t> coords(rank);
  for (const minidb::Row& row : relation.rows) {
    for (int d = 0; d < rank; ++d) {
      if (minidb::IsNull(row[d])) {
        return Status::InvalidArgument("NULL index value in result");
      }
      EINSQL_ASSIGN_OR_RETURN(coords[d], minidb::AsInt(row[d]));
    }
    V value;
    if constexpr (kComplex) {
      // A NULL re/im pair is an empty aggregation: contributes nothing.
      if (minidb::IsNull(row[rank]) && minidb::IsNull(row[rank + 1])) {
        continue;
      }
      EINSQL_ASSIGN_OR_RETURN(double re, minidb::AsDouble(row[rank]));
      EINSQL_ASSIGN_OR_RETURN(double im, minidb::AsDouble(row[rank + 1]));
      value = V(re, im);
    } else {
      if (minidb::IsNull(row[rank])) continue;
      EINSQL_ASSIGN_OR_RETURN(double v, minidb::AsDouble(row[rank]));
      value = v;
    }
    EINSQL_RETURN_IF_ERROR(out.Append(coords, value));
  }
  out.Coalesce(epsilon);
  return out;
}

}  // namespace

Result<CooTensor> ParseCooResult(const minidb::Relation& relation,
                                 const Shape& output_shape, double epsilon) {
  return ParseResultImpl<double>(relation, output_shape, epsilon);
}

Result<ComplexCooTensor> ParseComplexCooResult(
    const minidb::Relation& relation, const Shape& output_shape,
    double epsilon) {
  return ParseResultImpl<std::complex<double>>(relation, output_shape,
                                               epsilon);
}

Result<CooTensor> SqlEinsumEngine::RunProgram(
    const ContractionProgram& program,
    const std::vector<const CooTensor*>& tensors,
    const EinsumOptions& options) {
  ScopedSpan validate_span(options.trace, "validate");
  EINSQL_RETURN_IF_ERROR(CheckShapes(program, tensors));
  validate_span.End();
  ScopedSpan gen_span(options.trace, "sql generation");
  Stopwatch gen_watch;
  EINSQL_ASSIGN_OR_RETURN(
      std::string sql,
      GenerateEinsumSql(program, tensors, ToSqlGenOptions(options)));
  PipelineMetrics& metrics = Pipeline();
  metrics.sql_programs->Increment();
  metrics.sql_bytes->Increment(static_cast<int64_t>(sql.size()));
  metrics.sql_gen_seconds->Record(gen_watch.ElapsedSeconds());
  gen_span.SetAttribute("sql_bytes", static_cast<int64_t>(sql.size()));
  gen_span.SetAttribute("steps", static_cast<int64_t>(program.steps.size()));
  gen_span.End();
  // A null options.trace leaves any sink installed directly on the backend
  // (e.g. by the benchmark harness) in effect.
  if (options.trace != nullptr) backend_->set_trace(options.trace);
  ScopedSpan query_span(options.trace, "backend query");
  query_span.SetAttribute("backend", backend_->name());
  EINSQL_ASSIGN_OR_RETURN(minidb::Relation relation, backend_->Query(sql));
  query_span.SetAttribute("rows", backend_->last_stats().result_rows);
  query_span.End();
  ScopedSpan parse_span(options.trace, "parse result");
  EINSQL_ASSIGN_OR_RETURN(Shape output_shape,
                          OutputShape(program.spec, program.extents));
  return ParseCooResult(relation, output_shape, options.epsilon);
}

Result<ComplexCooTensor> SqlEinsumEngine::RunComplexProgram(
    const ContractionProgram& program,
    const std::vector<const ComplexCooTensor*>& tensors,
    const EinsumOptions& options) {
  ScopedSpan validate_span(options.trace, "validate");
  EINSQL_RETURN_IF_ERROR(CheckShapes(program, tensors));
  validate_span.End();
  ScopedSpan gen_span(options.trace, "sql generation");
  Stopwatch gen_watch;
  EINSQL_ASSIGN_OR_RETURN(
      std::string sql,
      GenerateComplexEinsumSql(program, tensors, ToSqlGenOptions(options)));
  PipelineMetrics& metrics = Pipeline();
  metrics.sql_programs->Increment();
  metrics.sql_bytes->Increment(static_cast<int64_t>(sql.size()));
  metrics.sql_gen_seconds->Record(gen_watch.ElapsedSeconds());
  gen_span.SetAttribute("sql_bytes", static_cast<int64_t>(sql.size()));
  gen_span.SetAttribute("steps", static_cast<int64_t>(program.steps.size()));
  gen_span.End();
  // A null options.trace leaves any sink installed directly on the backend
  // (e.g. by the benchmark harness) in effect.
  if (options.trace != nullptr) backend_->set_trace(options.trace);
  ScopedSpan query_span(options.trace, "backend query");
  query_span.SetAttribute("backend", backend_->name());
  EINSQL_ASSIGN_OR_RETURN(minidb::Relation relation, backend_->Query(sql));
  query_span.SetAttribute("rows", backend_->last_stats().result_rows);
  query_span.End();
  ScopedSpan parse_span(options.trace, "parse result");
  EINSQL_ASSIGN_OR_RETURN(Shape output_shape,
                          OutputShape(program.spec, program.extents));
  return ParseComplexCooResult(relation, output_shape, options.epsilon);
}

Result<CooTensor> DenseEinsumEngine::RunProgram(
    const ContractionProgram& program,
    const std::vector<const CooTensor*>& tensors,
    const EinsumOptions& options) {
  EINSQL_RETURN_IF_ERROR(CheckShapes(program, tensors));
  ScopedSpan span(options.trace, "dense contraction");
  span.SetAttribute("steps", static_cast<int64_t>(program.steps.size()));
  return ExecuteProgramDenseCoo<double>(program, tensors, options.epsilon);
}

Result<ComplexCooTensor> DenseEinsumEngine::RunComplexProgram(
    const ContractionProgram& program,
    const std::vector<const ComplexCooTensor*>& tensors,
    const EinsumOptions& options) {
  EINSQL_RETURN_IF_ERROR(CheckShapes(program, tensors));
  ScopedSpan span(options.trace, "dense contraction");
  span.SetAttribute("steps", static_cast<int64_t>(program.steps.size()));
  return ExecuteProgramDenseCoo<std::complex<double>>(program, tensors,
                                                      options.epsilon);
}

Result<CooTensor> SparseEinsumEngine::RunProgram(
    const ContractionProgram& program,
    const std::vector<const CooTensor*>& tensors,
    const EinsumOptions& options) {
  EINSQL_RETURN_IF_ERROR(CheckShapes(program, tensors));
  ScopedSpan span(options.trace, "sparse contraction");
  span.SetAttribute("steps", static_cast<int64_t>(program.steps.size()));
  return ExecuteProgramSparse<double>(program, tensors, options.epsilon);
}

Result<ComplexCooTensor> SparseEinsumEngine::RunComplexProgram(
    const ContractionProgram& program,
    const std::vector<const ComplexCooTensor*>& tensors,
    const EinsumOptions& options) {
  EINSQL_RETURN_IF_ERROR(CheckShapes(program, tensors));
  ScopedSpan span(options.trace, "sparse contraction");
  span.SetAttribute("steps", static_cast<int64_t>(program.steps.size()));
  return ExecuteProgramSparse<std::complex<double>>(program, tensors,
                                                    options.epsilon);
}

}  // namespace einsql
