#ifndef EINSQL_QUANTUM_CIRCUIT_H_
#define EINSQL_QUANTUM_CIRCUIT_H_

#include <vector>

#include "common/result.h"
#include "quantum/gates.h"

namespace einsql::quantum {

/// A quantum circuit: gates applied in order to `num_qubits` qubits.
struct Circuit {
  int num_qubits = 0;
  std::vector<Gate> gates;
};

/// Validates qubit ranges and gate arities.
Status Validate(const Circuit& circuit);

/// Simulates the circuit on a full state vector (the correctness oracle for
/// the einsum simulation; exponential in qubit count). `initial_bits[q]` is
/// the starting computational-basis value of qubit q. The returned vector
/// is indexed with qubit 0 as the least-significant bit.
Result<std::vector<Amplitude>> SimulateStatevector(
    const Circuit& circuit, const std::vector<int>& initial_bits);

}  // namespace einsql::quantum

#endif  // EINSQL_QUANTUM_CIRCUIT_H_
