#include "quantum/to_einsum.h"

namespace einsql::quantum {

std::vector<const ComplexCooTensor*> CircuitNetwork::operands() const {
  std::vector<const ComplexCooTensor*> ptrs;
  ptrs.reserve(tensors.size());
  for (const ComplexCooTensor& tensor : tensors) ptrs.push_back(&tensor);
  return ptrs;
}

Result<CircuitNetwork> BuildCircuitNetwork(
    const Circuit& circuit, const std::vector<int>& initial_bits) {
  EINSQL_RETURN_IF_ERROR(Validate(circuit));
  if (static_cast<int>(initial_bits.size()) != circuit.num_qubits) {
    return Status::InvalidArgument("initial state needs one bit per qubit");
  }
  CircuitNetwork network;
  // Wire labels start at 1 (char32_t 0 would terminate the term).
  Label next_label = 1;
  std::vector<Label> wire(circuit.num_qubits);

  // Input qubit vectors.
  for (int q = 0; q < circuit.num_qubits; ++q) {
    if (initial_bits[q] != 0 && initial_bits[q] != 1) {
      return Status::InvalidArgument("initial bit must be 0 or 1");
    }
    wire[q] = next_label++;
    ComplexCooTensor basis({2});
    EINSQL_RETURN_IF_ERROR(basis.Append({initial_bits[q]}, 1.0));
    network.spec.inputs.push_back(Term{wire[q]});
    network.tensors.push_back(std::move(basis));
  }

  for (const Gate& gate : circuit.gates) {
    switch (gate.kind) {
      case GateKind::kOneQubit: {
        const int q = gate.qubits[0];
        const Label out = next_label++;
        // M[out][in] with term {out, in}.
        network.spec.inputs.push_back(Term{out, wire[q]});
        network.tensors.push_back(gate.tensor.ToCoo());
        wire[q] = out;
        break;
      }
      case GateKind::kTwoQubit: {
        const int q1 = gate.qubits[0];
        const int q2 = gate.qubits[1];
        const Label out1 = next_label++;
        const Label out2 = next_label++;
        // M[o1][o2][i1][i2] with term {o1, o2, i1, i2}.
        network.spec.inputs.push_back(
            Term{out1, out2, wire[q1], wire[q2]});
        network.tensors.push_back(gate.tensor.ToCoo());
        wire[q1] = out1;
        wire[q2] = out2;
        break;
      }
      case GateKind::kControlledX: {
        const int control = gate.qubits[0];
        const int target = gate.qubits[1];
        const Label out = next_label++;
        // tensor[c][t_in][t_out]: the control wire passes through — this is
        // the 2×2×2 CX of the paper's format string ("dbc").
        network.spec.inputs.push_back(
            Term{wire[control], wire[target], out});
        network.tensors.push_back(gate.tensor.ToCoo());
        wire[target] = out;
        break;
      }
      case GateKind::kDiagonalTwoQubit: {
        // Neither wire is renamed; the phase table joins both wires.
        network.spec.inputs.push_back(
            Term{wire[gate.qubits[0]], wire[gate.qubits[1]]});
        network.tensors.push_back(gate.tensor.ToCoo());
        break;
      }
      case GateKind::kToffoli: {
        const int target = gate.qubits[2];
        const Label out = next_label++;
        // tensor[c1][c2][t_in][t_out]: both controls pass through.
        network.spec.inputs.push_back(Term{wire[gate.qubits[0]],
                                           wire[gate.qubits[1]],
                                           wire[target], out});
        network.tensors.push_back(gate.tensor.ToCoo());
        wire[target] = out;
        break;
      }
    }
  }
  for (int q = 0; q < circuit.num_qubits; ++q) {
    network.spec.output.push_back(wire[q]);
  }
  return network;
}

Result<ComplexCooTensor> SimulateEinsum(EinsumEngine* engine,
                                        const Circuit& circuit,
                                        const std::vector<int>& initial_bits,
                                        const EinsumOptions& options) {
  EINSQL_ASSIGN_OR_RETURN(CircuitNetwork network,
                          BuildCircuitNetwork(circuit, initial_bits));
  return engine->ComplexEinsumSpecified(network.spec, network.operands(),
                                        options);
}

Result<Amplitude> SimulateAmplitudeEinsum(EinsumEngine* engine,
                                          const Circuit& circuit,
                                          const std::vector<int>& initial_bits,
                                          const std::vector<int>& output_bits,
                                          const EinsumOptions& options) {
  EINSQL_ASSIGN_OR_RETURN(CircuitNetwork network,
                          BuildCircuitNetwork(circuit, initial_bits));
  if (static_cast<int>(output_bits.size()) != circuit.num_qubits) {
    return Status::InvalidArgument("output state needs one bit per qubit");
  }
  // Close every output wire with the basis covector <b_q|.
  for (int q = 0; q < circuit.num_qubits; ++q) {
    if (output_bits[q] != 0 && output_bits[q] != 1) {
      return Status::InvalidArgument("output bit must be 0 or 1");
    }
    ComplexCooTensor basis({2});
    EINSQL_RETURN_IF_ERROR(basis.Append({output_bits[q]}, 1.0));
    network.spec.inputs.push_back(Term{network.spec.output[q]});
    network.tensors.push_back(std::move(basis));
  }
  network.spec.output.clear();
  EINSQL_ASSIGN_OR_RETURN(
      ComplexCooTensor scalar,
      engine->ComplexEinsumSpecified(network.spec, network.operands(),
                                     options));
  return scalar.At({});
}

Result<std::vector<Amplitude>> AmplitudesToStatevector(
    const ComplexCooTensor& amplitudes) {
  const int n = amplitudes.rank();
  for (int64_t extent : amplitudes.shape()) {
    if (extent != 2) {
      return Status::InvalidArgument("amplitude tensor axes must have size 2");
    }
  }
  if (n > 24) return Status::InvalidArgument("too many qubits to flatten");
  std::vector<Amplitude> state(int64_t{1} << n, 0.0);
  for (int64_t k = 0; k < amplitudes.nnz(); ++k) {
    int64_t index = 0;
    for (int q = 0; q < n; ++q) {
      index |= amplitudes.raw_coords()[k * n + q] << q;
    }
    state[index] += amplitudes.ValueAt(k);
  }
  return state;
}

}  // namespace einsql::quantum
