#include "quantum/sycamore.h"

#include <cmath>

#include "common/rng.h"

namespace einsql::quantum {

Circuit SycamoreLikeCircuit(int num_qubits, int depth, uint64_t seed) {
  Rng rng(seed);
  Circuit circuit;
  circuit.num_qubits = num_qubits;
  const int width =
      std::max(1, static_cast<int>(std::ceil(std::sqrt(num_qubits))));
  auto qubit_at = [&](int row, int column) { return row * width + column; };
  const double theta = 1.5707963267948966 / 1.0;  // π/2
  const double phi = 0.5235987755982988;          // π/6

  std::vector<int> previous_choice(num_qubits, -1);
  for (int cycle = 0; cycle < depth; ++cycle) {
    // Single-qubit layer: random √X/√Y/√W, never repeating on a qubit.
    for (int q = 0; q < num_qubits; ++q) {
      int choice;
      do {
        choice = static_cast<int>(rng.UniformInt(0, 2));
      } while (choice == previous_choice[q]);
      previous_choice[q] = choice;
      switch (choice) {
        case 0: circuit.gates.push_back(SqrtX(q)); break;
        case 1: circuit.gates.push_back(SqrtY(q)); break;
        default: circuit.gates.push_back(SqrtW(q)); break;
      }
    }
    // Two-qubit layer: one of the four ABCD coupler patterns.
    const int pattern = cycle % 4;
    const bool horizontal = pattern < 2;
    const int parity = pattern % 2;
    const int rows = (num_qubits + width - 1) / width;
    for (int row = 0; row < rows; ++row) {
      for (int column = 0; column < width; ++column) {
        const int q = qubit_at(row, column);
        if (q >= num_qubits) continue;
        int partner;
        if (horizontal) {
          if (column + 1 >= width || column % 2 != parity) continue;
          partner = qubit_at(row, column + 1);
        } else {
          if (row % 2 != parity) continue;
          partner = qubit_at(row + 1, column);
        }
        if (partner >= num_qubits) continue;
        circuit.gates.push_back(FSim(q, partner, theta, phi));
      }
    }
  }
  return circuit;
}

}  // namespace einsql::quantum
