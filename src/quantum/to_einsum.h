#ifndef EINSQL_QUANTUM_TO_EINSUM_H_
#define EINSQL_QUANTUM_TO_EINSUM_H_

#include "backends/einsum_engine.h"
#include "quantum/circuit.h"

namespace einsql::quantum {

/// A circuit converted to its tensor network (§4.4, the paper's
/// "a,b,ca,dbc,ed->ce" construction): one rank-1 tensor per input qubit,
/// one tensor per gate, wires as shared indices; the output term collects
/// each qubit's final wire, so the result is the rank-n amplitude tensor.
struct CircuitNetwork {
  EinsumSpec spec;
  std::vector<ComplexCooTensor> tensors;

  std::vector<const ComplexCooTensor*> operands() const;
};

/// Builds the network for `circuit` starting from the computational-basis
/// state given by `initial_bits` (one 0/1 per qubit).
Result<CircuitNetwork> BuildCircuitNetwork(const Circuit& circuit,
                                           const std::vector<int>& initial_bits);

/// Simulates by contracting the network on `engine`; the result is the
/// final state as a rank-n COO tensor over {0,1}^n (axis q = qubit q).
Result<ComplexCooTensor> SimulateEinsum(EinsumEngine* engine,
                                        const Circuit& circuit,
                                        const std::vector<int>& initial_bits,
                                        const EinsumOptions& options = {});

/// Flattens a rank-n amplitude tensor to a 2^n state vector with qubit 0 as
/// the least-significant bit (comparison against SimulateStatevector).
Result<std::vector<Amplitude>> AmplitudesToStatevector(
    const ComplexCooTensor& amplitudes);

/// Computes the single amplitude <output_bits| C |initial_bits> by closing
/// every output wire with a basis covector, so the whole network contracts
/// to a scalar. This is how tensor-network simulators evaluate individual
/// bitstring amplitudes of circuits far too wide for the full state vector
/// (the regime where Figure 9 shows the dense output overwhelming SQL).
Result<Amplitude> SimulateAmplitudeEinsum(EinsumEngine* engine,
                                          const Circuit& circuit,
                                          const std::vector<int>& initial_bits,
                                          const std::vector<int>& output_bits,
                                          const EinsumOptions& options = {});

}  // namespace einsql::quantum

#endif  // EINSQL_QUANTUM_TO_EINSUM_H_
