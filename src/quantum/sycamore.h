#ifndef EINSQL_QUANTUM_SYCAMORE_H_
#define EINSQL_QUANTUM_SYCAMORE_H_

#include "quantum/circuit.h"

namespace einsql::quantum {

/// Generates a Sycamore-style random circuit (the stand-in for the Yao.jl
/// instances of §4.4): qubits on a ⌈√n⌉-wide grid; each cycle applies a
/// random single-qubit gate from {√X, √Y, √W} to every qubit (never
/// repeating the previous choice on the same qubit, as in the supremacy
/// experiment) followed by fSim(π/2, π/6) couplers on one of four
/// alternating grid patterns (the ABCD sequence).
///
/// `depth` counts cycles; the full Sycamore experiment used 53 qubits at
/// depth 20.
Circuit SycamoreLikeCircuit(int num_qubits, int depth, uint64_t seed = 11);

}  // namespace einsql::quantum

#endif  // EINSQL_QUANTUM_SYCAMORE_H_
