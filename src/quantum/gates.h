#ifndef EINSQL_QUANTUM_GATES_H_
#define EINSQL_QUANTUM_GATES_H_

#include <complex>
#include <string>
#include <vector>

#include "common/result.h"
#include "tensor/dense.h"

namespace einsql::quantum {

using Amplitude = std::complex<double>;

/// How a gate enters the tensor network (§4.4).
enum class GateKind {
  /// Single-qubit unitary, a 2×2 matrix M[out][in]; rewires its qubit.
  kOneQubit,
  /// General two-qubit unitary, a 2×2×2×2 tensor M[out1][out2][in1][in2];
  /// rewires both qubits.
  kTwoQubit,
  /// Controlled-X: the 2×2×2 tensor of the paper ("the CX gate is instead a
  /// 2×2×2-tensor"), indexed [control][target_in][target_out]; the control
  /// wire passes through unchanged.
  kControlledX,
  /// Two-qubit diagonal (CZ, CPhase): a 2×2 phase table D[q1][q2]; neither
  /// wire is renamed.
  kDiagonalTwoQubit,
  /// Toffoli (CCX): a 2×2×2×2 tensor [c1][c2][t_in][t_out]; both control
  /// wires pass through unchanged, only the target is rewired.
  kToffoli,
};

/// One gate application.
struct Gate {
  std::string name;
  GateKind kind = GateKind::kOneQubit;
  /// 1, 2, or (Toffoli) 3 entries; for kControlledX: {control, target};
  /// for kToffoli: {control1, control2, target}.
  std::vector<int> qubits;
  ComplexDenseTensor tensor;
};

/// Gate constructors. Matrices follow the usual computational-basis
/// convention.
Gate H(int qubit);
Gate X(int qubit);
Gate Y(int qubit);
Gate Z(int qubit);
Gate S(int qubit);
Gate T(int qubit);
/// Sycamore's single-qubit set: √X, √Y, and √W with W = (X+Y)/√2.
Gate SqrtX(int qubit);
Gate SqrtY(int qubit);
Gate SqrtW(int qubit);
Gate Rz(int qubit, double theta);
Gate CX(int control, int target);
Gate CZ(int q1, int q2);
/// fSim(θ, φ), Sycamore's two-qubit coupler.
Gate FSim(int q1, int q2, double theta, double phi);
/// SWAP, exchanging two qubits.
Gate Swap(int q1, int q2);
/// Toffoli (controlled-controlled-X).
Gate Toffoli(int control1, int control2, int target);
/// Arbitrary single-qubit unitary from a row-major 2×2 matrix.
Gate OneQubitGate(std::string name, int qubit,
                  const std::vector<Amplitude>& matrix);

/// Checks unitarity of a gate's underlying matrix (tests).
Result<bool> IsUnitary(const Gate& gate, double tolerance = 1e-9);

}  // namespace einsql::quantum

#endif  // EINSQL_QUANTUM_GATES_H_
