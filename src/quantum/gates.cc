#include "quantum/gates.h"

#include <cmath>

namespace einsql::quantum {

namespace {

constexpr double kInvSqrt2 = 0.7071067811865475244;

Gate MakeOneQubit(std::string name, int qubit,
                  std::initializer_list<Amplitude> values) {
  Gate gate;
  gate.name = std::move(name);
  gate.kind = GateKind::kOneQubit;
  gate.qubits = {qubit};
  gate.tensor = ComplexDenseTensor::FromData({2, 2}, values).value();
  return gate;
}

// Square root of an involution (M² = I): √M = e^{iπ/4}/√2 · (I - iM).
Gate SqrtOfInvolution(std::string name, int qubit, Amplitude m00,
                      Amplitude m01, Amplitude m10, Amplitude m11) {
  const Amplitude phase = Amplitude(0.5, 0.5);  // e^{iπ/4}/√2
  const Amplitude i(0, 1);
  return MakeOneQubit(std::move(name), qubit,
                      {phase * (1.0 - i * m00), phase * (-i * m01),
                       phase * (-i * m10), phase * (1.0 - i * m11)});
}

}  // namespace

Gate H(int qubit) {
  return MakeOneQubit("H", qubit,
                      {kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2});
}

Gate X(int qubit) { return MakeOneQubit("X", qubit, {0, 1, 1, 0}); }

Gate Y(int qubit) {
  return MakeOneQubit("Y", qubit,
                      {0, Amplitude(0, -1), Amplitude(0, 1), 0});
}

Gate Z(int qubit) { return MakeOneQubit("Z", qubit, {1, 0, 0, -1}); }

Gate S(int qubit) {
  return MakeOneQubit("S", qubit, {1, 0, 0, Amplitude(0, 1)});
}

Gate T(int qubit) {
  return MakeOneQubit("T", qubit,
                      {1, 0, 0, Amplitude(kInvSqrt2, kInvSqrt2)});
}

Gate SqrtX(int qubit) { return SqrtOfInvolution("sqrtX", qubit, 0, 1, 1, 0); }

Gate SqrtY(int qubit) {
  return SqrtOfInvolution("sqrtY", qubit, 0, Amplitude(0, -1),
                          Amplitude(0, 1), 0);
}

Gate SqrtW(int qubit) {
  // W = (X + Y)/√2 is an involution with off-diagonals e^{∓iπ/4}.
  return SqrtOfInvolution("sqrtW", qubit, 0,
                          Amplitude(kInvSqrt2, -kInvSqrt2),
                          Amplitude(kInvSqrt2, kInvSqrt2), 0);
}

Gate Rz(int qubit, double theta) {
  return MakeOneQubit("Rz", qubit,
                      {std::exp(Amplitude(0, -theta / 2)), 0, 0,
                       std::exp(Amplitude(0, theta / 2))});
}

Gate CX(int control, int target) {
  Gate gate;
  gate.name = "CX";
  gate.kind = GateKind::kControlledX;
  gate.qubits = {control, target};
  // tensor[c][t_in][t_out] = 1 iff t_out == t_in XOR c.
  auto tensor = ComplexDenseTensor::Zeros({2, 2, 2}).value();
  for (int64_t c = 0; c < 2; ++c) {
    for (int64_t t_in = 0; t_in < 2; ++t_in) {
      (void)tensor.Set({c, t_in, t_in ^ c}, 1.0);
    }
  }
  gate.tensor = std::move(tensor);
  return gate;
}

Gate CZ(int q1, int q2) {
  Gate gate;
  gate.name = "CZ";
  gate.kind = GateKind::kDiagonalTwoQubit;
  gate.qubits = {q1, q2};
  gate.tensor =
      ComplexDenseTensor::FromData({2, 2}, {1, 1, 1, -1}).value();
  return gate;
}

Gate FSim(int q1, int q2, double theta, double phi) {
  Gate gate;
  gate.name = "fSim";
  gate.kind = GateKind::kTwoQubit;
  gate.qubits = {q1, q2};
  auto tensor = ComplexDenseTensor::Zeros({2, 2, 2, 2}).value();
  const Amplitude c = std::cos(theta);
  const Amplitude ms = Amplitude(0, -std::sin(theta));
  // Basis |q1 q2>: out/in pairs (o1,o2),(i1,i2).
  (void)tensor.Set({0, 0, 0, 0}, 1.0);
  (void)tensor.Set({0, 1, 0, 1}, c);
  (void)tensor.Set({0, 1, 1, 0}, ms);
  (void)tensor.Set({1, 0, 0, 1}, ms);
  (void)tensor.Set({1, 0, 1, 0}, c);
  (void)tensor.Set({1, 1, 1, 1}, std::exp(Amplitude(0, -phi)));
  gate.tensor = std::move(tensor);
  return gate;
}

Gate Swap(int q1, int q2) {
  Gate gate;
  gate.name = "SWAP";
  gate.kind = GateKind::kTwoQubit;
  gate.qubits = {q1, q2};
  auto tensor = ComplexDenseTensor::Zeros({2, 2, 2, 2}).value();
  for (int64_t a = 0; a < 2; ++a) {
    for (int64_t b = 0; b < 2; ++b) {
      (void)tensor.Set({b, a, a, b}, 1.0);  // outputs are the swapped inputs
    }
  }
  gate.tensor = std::move(tensor);
  return gate;
}

Gate Toffoli(int control1, int control2, int target) {
  Gate gate;
  gate.name = "CCX";
  gate.kind = GateKind::kToffoli;
  gate.qubits = {control1, control2, target};
  // tensor[c1][c2][t_in][t_out] = 1 iff t_out == t_in XOR (c1 AND c2).
  auto tensor = ComplexDenseTensor::Zeros({2, 2, 2, 2}).value();
  for (int64_t c1 = 0; c1 < 2; ++c1) {
    for (int64_t c2 = 0; c2 < 2; ++c2) {
      for (int64_t t_in = 0; t_in < 2; ++t_in) {
        (void)tensor.Set({c1, c2, t_in, t_in ^ (c1 & c2)}, 1.0);
      }
    }
  }
  gate.tensor = std::move(tensor);
  return gate;
}

Gate OneQubitGate(std::string name, int qubit,
                  const std::vector<Amplitude>& matrix) {
  Gate gate;
  gate.name = std::move(name);
  gate.kind = GateKind::kOneQubit;
  gate.qubits = {qubit};
  gate.tensor =
      ComplexDenseTensor::FromData({2, 2}, matrix).value();
  return gate;
}

Result<bool> IsUnitary(const Gate& gate, double tolerance) {
  // Reconstruct the full matrix in the computational basis.
  int dim = 2;
  std::vector<Amplitude> m;
  switch (gate.kind) {
    case GateKind::kOneQubit:
      m = {gate.tensor.data().begin(), gate.tensor.data().end()};
      break;
    case GateKind::kTwoQubit: {
      dim = 4;
      m.assign(16, 0.0);
      for (int64_t o1 = 0; o1 < 2; ++o1)
        for (int64_t o2 = 0; o2 < 2; ++o2)
          for (int64_t i1 = 0; i1 < 2; ++i1)
            for (int64_t i2 = 0; i2 < 2; ++i2)
              m[(o1 * 2 + o2) * 4 + (i1 * 2 + i2)] =
                  gate.tensor.At({o1, o2, i1, i2}).value();
      break;
    }
    case GateKind::kControlledX: {
      dim = 4;
      m.assign(16, 0.0);
      for (int64_t c = 0; c < 2; ++c)
        for (int64_t t_in = 0; t_in < 2; ++t_in)
          for (int64_t t_out = 0; t_out < 2; ++t_out)
            m[(c * 2 + t_out) * 4 + (c * 2 + t_in)] =
                gate.tensor.At({c, t_in, t_out}).value();
      break;
    }
    case GateKind::kDiagonalTwoQubit: {
      dim = 4;
      m.assign(16, 0.0);
      for (int64_t a = 0; a < 2; ++a)
        for (int64_t b = 0; b < 2; ++b)
          m[(a * 2 + b) * 4 + (a * 2 + b)] = gate.tensor.At({a, b}).value();
      break;
    }
    case GateKind::kToffoli: {
      dim = 8;
      m.assign(64, 0.0);
      for (int64_t c1 = 0; c1 < 2; ++c1)
        for (int64_t c2 = 0; c2 < 2; ++c2)
          for (int64_t t_in = 0; t_in < 2; ++t_in)
            for (int64_t t_out = 0; t_out < 2; ++t_out)
              m[((c1 * 2 + c2) * 2 + t_out) * 8 + ((c1 * 2 + c2) * 2 + t_in)] =
                  gate.tensor.At({c1, c2, t_in, t_out}).value();
      break;
    }
  }
  // M * M† == I?
  for (int r = 0; r < dim; ++r) {
    for (int c = 0; c < dim; ++c) {
      Amplitude sum = 0.0;
      for (int k = 0; k < dim; ++k) {
        sum += m[r * dim + k] * std::conj(m[c * dim + k]);
      }
      const Amplitude expected = r == c ? 1.0 : 0.0;
      if (std::abs(sum - expected) > tolerance) return false;
    }
  }
  return true;
}

}  // namespace einsql::quantum
