#include "quantum/circuit.h"

namespace einsql::quantum {

Status Validate(const Circuit& circuit) {
  if (circuit.num_qubits < 1) {
    return Status::InvalidArgument("circuit needs at least one qubit");
  }
  for (size_t g = 0; g < circuit.gates.size(); ++g) {
    const Gate& gate = circuit.gates[g];
    const size_t arity = gate.kind == GateKind::kOneQubit  ? 1
                         : gate.kind == GateKind::kToffoli ? 3
                                                           : 2;
    if (gate.qubits.size() != arity) {
      return Status::InvalidArgument("gate ", g, " (", gate.name,
                                     ") has wrong qubit count");
    }
    for (int qubit : gate.qubits) {
      if (qubit < 0 || qubit >= circuit.num_qubits) {
        return Status::InvalidArgument("gate ", g, " (", gate.name,
                                       ") addresses qubit ", qubit,
                                       " out of range");
      }
    }
    for (size_t a = 0; a < gate.qubits.size(); ++a) {
      for (size_t b = a + 1; b < gate.qubits.size(); ++b) {
        if (gate.qubits[a] == gate.qubits[b]) {
          return Status::InvalidArgument("gate ", g, " (", gate.name,
                                         ") addresses the same qubit twice");
        }
      }
    }
  }
  return Status::OK();
}

Result<std::vector<Amplitude>> SimulateStatevector(
    const Circuit& circuit, const std::vector<int>& initial_bits) {
  EINSQL_RETURN_IF_ERROR(Validate(circuit));
  if (static_cast<int>(initial_bits.size()) != circuit.num_qubits) {
    return Status::InvalidArgument("initial state needs one bit per qubit");
  }
  if (circuit.num_qubits > 24) {
    return Status::InvalidArgument(
        "state-vector oracle limited to 24 qubits");
  }
  const int64_t dim = int64_t{1} << circuit.num_qubits;
  std::vector<Amplitude> state(dim, 0.0);
  int64_t start = 0;
  for (int q = 0; q < circuit.num_qubits; ++q) {
    if (initial_bits[q] != 0 && initial_bits[q] != 1) {
      return Status::InvalidArgument("initial bit must be 0 or 1");
    }
    start |= static_cast<int64_t>(initial_bits[q]) << q;
  }
  state[start] = 1.0;

  for (const Gate& gate : circuit.gates) {
    switch (gate.kind) {
      case GateKind::kOneQubit: {
        const int64_t bit = int64_t{1} << gate.qubits[0];
        const auto& m = gate.tensor;  // m[out][in]
        for (int64_t index = 0; index < dim; ++index) {
          if (index & bit) continue;  // visit each pair once
          const Amplitude a0 = state[index];
          const Amplitude a1 = state[index | bit];
          state[index] = m[0] * a0 + m[1] * a1;           // out=0
          state[index | bit] = m[2] * a0 + m[3] * a1;     // out=1
        }
        break;
      }
      case GateKind::kTwoQubit: {
        const int64_t bit1 = int64_t{1} << gate.qubits[0];
        const int64_t bit2 = int64_t{1} << gate.qubits[1];
        const auto& m = gate.tensor;  // [o1][o2][i1][i2]
        for (int64_t index = 0; index < dim; ++index) {
          if ((index & bit1) || (index & bit2)) continue;
          Amplitude in[4];  // basis |i1 i2>
          in[0] = state[index];
          in[1] = state[index | bit2];
          in[2] = state[index | bit1];
          in[3] = state[index | bit1 | bit2];
          for (int o1 = 0; o1 < 2; ++o1) {
            for (int o2 = 0; o2 < 2; ++o2) {
              Amplitude sum = 0.0;
              for (int i1 = 0; i1 < 2; ++i1) {
                for (int i2 = 0; i2 < 2; ++i2) {
                  sum += m[((o1 * 2 + o2) * 2 + i1) * 2 + i2] *
                         in[i1 * 2 + i2];
                }
              }
              state[index | (o1 ? bit1 : 0) | (o2 ? bit2 : 0)] = sum;
            }
          }
        }
        break;
      }
      case GateKind::kControlledX: {
        const int64_t cbit = int64_t{1} << gate.qubits[0];
        const int64_t tbit = int64_t{1} << gate.qubits[1];
        for (int64_t index = 0; index < dim; ++index) {
          if ((index & cbit) && !(index & tbit)) {
            std::swap(state[index], state[index | tbit]);
          }
        }
        break;
      }
      case GateKind::kDiagonalTwoQubit: {
        const int64_t bit1 = int64_t{1} << gate.qubits[0];
        const int64_t bit2 = int64_t{1} << gate.qubits[1];
        const auto& d = gate.tensor;  // d[a][b]
        for (int64_t index = 0; index < dim; ++index) {
          const int a = (index & bit1) ? 1 : 0;
          const int b = (index & bit2) ? 1 : 0;
          state[index] *= d[a * 2 + b];
        }
        break;
      }
      case GateKind::kToffoli: {
        const int64_t c1 = int64_t{1} << gate.qubits[0];
        const int64_t c2 = int64_t{1} << gate.qubits[1];
        const int64_t tbit = int64_t{1} << gate.qubits[2];
        for (int64_t index = 0; index < dim; ++index) {
          if ((index & c1) && (index & c2) && !(index & tbit)) {
            std::swap(state[index], state[index | tbit]);
          }
        }
        break;
      }
    }
  }
  return state;
}

}  // namespace einsql::quantum
