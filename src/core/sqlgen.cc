#include "core/sqlgen.h"

#include <map>

#include "common/str_util.h"

namespace einsql {

namespace {

// One operand of a generated SELECT: the relation name and its index term.
struct StepInput {
  std::string table;
  Term term;
};

std::string IndexColumn(int position) { return StrCat("i", position); }

// Column list for a CTE header holding a tensor of the given term length,
// e.g. "(i0, i1, val)" or "(i0, i1, re, im)".
std::string CteColumns(size_t rank, bool complex_values) {
  std::string out = "(";
  for (size_t d = 0; d < rank; ++d) out += IndexColumn(d) + ", ";
  out += complex_values ? "re, im)" : "val)";
  return out;
}

template <typename V>
void AppendValueLiterals(std::string* row, V value);

template <>
void AppendValueLiterals(std::string* row, double value) {
  *row += DoubleToSqlLiteral(value);
}

template <>
void AppendValueLiterals(std::string* row, std::complex<double> value) {
  *row += DoubleToSqlLiteral(value.real());
  *row += ", ";
  *row += DoubleToSqlLiteral(value.imag());
}

template <typename V>
std::string CooToValuesCteImpl(const std::string& name, const Coo<V>& tensor) {
  constexpr bool kComplex = !std::is_same_v<V, double>;
  std::string out = name + CteColumns(tensor.rank(), kComplex) + " AS (";
  if (tensor.nnz() == 0) {
    // VALUES of zero rows is not valid SQL; emit an empty SELECT instead.
    out += "SELECT ";
    for (int d = 0; d < tensor.rank(); ++d) out += "0, ";
    out += kComplex ? "0.0, 0.0" : "0.0";
    out += " WHERE 1=0)";
    return out;
  }
  out += "VALUES ";
  const int r = tensor.rank();
  for (int64_t k = 0; k < tensor.nnz(); ++k) {
    if (k > 0) out += ", ";
    out += "(";
    for (int d = 0; d < r; ++d) {
      out += std::to_string(tensor.raw_coords()[k * r + d]);
      out += ", ";
    }
    AppendValueLiterals(&out, tensor.ValueAt(k));
    out += ")";
  }
  out += ")";
  return out;
}

// Builds one SELECT statement applying the four mapping rules of §3.2:
//   R1: all operands in the FROM clause,
//   R2: output indices in SELECT and GROUP BY,
//   R3: the new value is SUM of the product of all operand values,
//   R4: equal indices transitively equated in WHERE.
Result<std::string> BuildSelect(const std::vector<StepInput>& inputs,
                                const Term& out_term,
                                bool complex_values, bool simplify) {
  if (inputs.empty()) return Status::Internal("SELECT with no operands");
  if (complex_values && inputs.size() > 2) {
    return Status::InvalidArgument(
        "complex Einstein summation requires pairwise decomposition; a "
        "product of ", inputs.size(),
        " complex factors cannot be expressed with the two-factor formula");
  }
  // Occurrences of every index character: (operand, axis position).
  std::map<Label, std::vector<std::pair<int, int>>> occurrences;
  std::vector<Label> char_order;  // deterministic first-appearance order
  for (size_t t = 0; t < inputs.size(); ++t) {
    const Term& term = inputs[t].term;
    for (size_t d = 0; d < term.size(); ++d) {
      if (occurrences.find(term[d]) == occurrences.end()) {
        char_order.push_back(term[d]);
      }
      occurrences[term[d]].emplace_back(static_cast<int>(t),
                                        static_cast<int>(d));
    }
  }
  for (Label c : out_term) {
    if (occurrences.find(c) == occurrences.end()) {
      return Status::InvalidArgument("output index '", TermToString(Term(1, c)),
                                     "' missing from step operands");
    }
  }
  // A step performs no aggregation iff every index occurs exactly once and
  // survives into the output (pure outer product / identity projection).
  bool needs_sum = false;
  for (Label c : char_order) {
    if (occurrences[c].size() > 1 ||
        out_term.find(c) == Term::npos) {
      needs_sum = true;
      break;
    }
  }
  if (!simplify) needs_sum = true;

  auto alias = [](int t) { return StrCat("a", t); };
  auto source_col = [&](Label c) {
    const auto& [t, d] = occurrences[c].front();
    return alias(t) + "." + IndexColumn(d);
  };

  // SELECT list (R2 for the indices, R3 for the value).
  std::string select = "SELECT ";
  for (size_t k = 0; k < out_term.size(); ++k) {
    select += source_col(out_term[k]) + " AS " + IndexColumn(k) + ", ";
  }
  if (complex_values) {
    std::string re_expr, im_expr;
    if (inputs.size() == 1) {
      re_expr = alias(0) + ".re";
      im_expr = alias(0) + ".im";
    } else {
      // Hard-coded complex product (a+bi)(c+di) = (ac-bd) + (ad+bc)i (§4.4).
      const std::string a = alias(0) + ".re", b = alias(0) + ".im";
      const std::string c = alias(1) + ".re", d = alias(1) + ".im";
      re_expr = a + " * " + c + " - " + b + " * " + d;
      im_expr = a + " * " + d + " + " + b + " * " + c;
    }
    if (needs_sum) {
      select += "SUM(" + re_expr + ") AS re, SUM(" + im_expr + ") AS im";
    } else {
      select += re_expr + " AS re, " + im_expr + " AS im";
    }
  } else {
    std::string product;
    for (size_t t = 0; t < inputs.size(); ++t) {
      if (t > 0) product += " * ";
      product += alias(t) + ".val";
    }
    if (needs_sum) {
      select += "SUM(" + product + ") AS val";
    } else {
      select += product + " AS val";
    }
  }

  // FROM clause (R1).
  std::string from = " FROM ";
  for (size_t t = 0; t < inputs.size(); ++t) {
    if (t > 0) from += ", ";
    from += inputs[t].table + " " + alias(t);
  }

  // WHERE clause (R4): transitively equate repeated indices.
  std::vector<std::string> equalities;
  for (Label c : char_order) {
    const auto& occs = occurrences[c];
    for (size_t k = 1; k < occs.size(); ++k) {
      const auto& [pt, pd] = occs[k - 1];
      const auto& [ct, cd] = occs[k];
      equalities.push_back(alias(pt) + "." + IndexColumn(pd) + "=" +
                           alias(ct) + "." + IndexColumn(cd));
    }
  }
  std::string where;
  if (!equalities.empty()) where = " WHERE " + Join(equalities, " AND ");

  // GROUP BY clause (R2), skipped for scalar outputs and aggregation-free
  // steps.
  std::string group_by;
  if (needs_sum && !out_term.empty()) {
    group_by = " GROUP BY ";
    for (size_t k = 0; k < out_term.size(); ++k) {
      if (k > 0) group_by += ", ";
      group_by += source_col(out_term[k]);
    }
  }
  return select + from + where + group_by;
}

template <typename V>
Result<std::string> GenerateImpl(const ContractionProgram& program,
                                 const std::vector<const Coo<V>*>* tensors,
                                 SqlGenOptions options) {
  constexpr bool kComplex = !std::is_same_v<V, double>;
  if (kComplex) options.complex_values = true;
  const int n = program.num_inputs;
  const bool inline_mode = tensors != nullptr;
  if (inline_mode && static_cast<int>(tensors->size()) != n) {
    return Status::InvalidArgument("expected ", n, " tensors, got ",
                                   tensors->size());
  }
  if (!inline_mode && static_cast<int>(options.input_names.size()) != n) {
    return Status::InvalidArgument(
        "options.input_names must name one table per input");
  }

  auto slot_name = [&](int slot) -> std::string {
    if (slot < n) {
      return inline_mode ? StrCat(options.inline_prefix, slot)
                         : options.input_names[slot];
    }
    return StrCat(options.intermediate_prefix, slot - n + 1);
  };

  std::vector<std::string> ctes;
  if (!options.prelude_ctes.empty()) ctes.push_back(options.prelude_ctes);
  if (inline_mode) {
    for (int t = 0; t < n; ++t) {
      ctes.push_back(CooToValuesCteImpl(slot_name(t), *(*tensors)[t]));
    }
  }

  std::string final_select;
  if (!options.decompose) {
    // Single flat query over all inputs (§3.2).
    std::vector<StepInput> inputs;
    for (int t = 0; t < n; ++t) {
      inputs.push_back({slot_name(t), program.spec.inputs[t]});
    }
    EINSQL_ASSIGN_OR_RETURN(
        final_select, BuildSelect(inputs, program.spec.output,
                                  options.complex_values, options.simplify));
  } else if (program.steps.empty()) {
    // Identity expression such as "ij->ij".
    std::vector<StepInput> inputs = {
        {slot_name(program.result_slot), program.spec.output}};
    EINSQL_ASSIGN_OR_RETURN(
        final_select, BuildSelect(inputs, program.spec.output,
                                  options.complex_values, options.simplify));
  } else {
    for (size_t s = 0; s < program.steps.size(); ++s) {
      const ProgramStep& step = program.steps[s];
      std::vector<StepInput> inputs;
      for (size_t a = 0; a < step.args.size(); ++a) {
        inputs.push_back({slot_name(step.args[a]), step.arg_terms[a]});
      }
      EINSQL_ASSIGN_OR_RETURN(
          std::string select,
          BuildSelect(inputs, step.result_term, options.complex_values,
                      options.simplify));
      if (s + 1 == program.steps.size()) {
        final_select = select;
      } else {
        ctes.push_back(slot_name(step.result_slot) +
                       CteColumns(step.result_term.size(),
                                  options.complex_values) +
                       " AS (" + select + ")");
      }
    }
  }

  std::string sql;
  if (!ctes.empty()) sql = "WITH " + Join(ctes, ",\n") + "\n";
  sql += final_select;
  if (!options.order_by.empty()) sql += " ORDER BY " + options.order_by;
  return sql;
}

}  // namespace

std::string CooToValuesCte(const std::string& name, const CooTensor& tensor) {
  return CooToValuesCteImpl(name, tensor);
}

std::string CooToValuesCte(const std::string& name,
                           const ComplexCooTensor& tensor) {
  return CooToValuesCteImpl(name, tensor);
}

Result<std::string> GenerateEinsumSql(
    const ContractionProgram& program,
    const std::vector<const CooTensor*>& tensors,
    const SqlGenOptions& options) {
  return GenerateImpl<double>(program, &tensors, options);
}

Result<std::string> GenerateComplexEinsumSql(
    const ContractionProgram& program,
    const std::vector<const ComplexCooTensor*>& tensors,
    const SqlGenOptions& options) {
  return GenerateImpl<std::complex<double>>(program, &tensors, options);
}

Result<std::string> GenerateEinsumSqlForTables(
    const ContractionProgram& program, const SqlGenOptions& options) {
  if (options.complex_values) {
    return GenerateImpl<std::complex<double>>(program, nullptr, options);
  }
  return GenerateImpl<double>(program, nullptr, options);
}

}  // namespace einsql
