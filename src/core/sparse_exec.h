#ifndef EINSQL_CORE_SPARSE_EXEC_H_
#define EINSQL_CORE_SPARSE_EXEC_H_

#include <vector>

#include "common/result.h"
#include "core/program.h"
#include "tensor/sparse_contract.h"

namespace einsql {

/// Executes a contraction program directly on COO storage with sparse
/// hash-join/hash-aggregate kernels — what a tensor-native triplestore
/// (Tentris, §6) does in memory, and exactly the operator pipeline the
/// generated SQL induces in a DBMS, minus SQL. Entries with magnitude
/// <= epsilon are dropped from the final result.
template <typename V>
Result<Coo<V>> ExecuteProgramSparse(const ContractionProgram& program,
                                    const std::vector<const Coo<V>*>& inputs,
                                    double epsilon = 0.0);

}  // namespace einsql

#endif  // EINSQL_CORE_SPARSE_EXEC_H_
