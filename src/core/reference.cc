#include "core/reference.h"

#include <complex>
#include <map>

namespace einsql {

template <typename V>
Result<Dense<V>> ReferenceEinsum(const EinsumSpec& spec,
                                 const std::vector<const Dense<V>*>& inputs) {
  std::vector<Shape> shapes;
  shapes.reserve(inputs.size());
  for (const Dense<V>* t : inputs) shapes.push_back(t->shape());
  EINSQL_ASSIGN_OR_RETURN(auto extents, IndexExtents(spec, shapes));
  EINSQL_ASSIGN_OR_RETURN(Shape out_shape, OutputShape(spec, extents));
  EINSQL_ASSIGN_OR_RETURN(Dense<V> out, Dense<V>::Zeros(out_shape));

  // A degenerate (size-0) index makes the joint index space empty: nothing
  // is summed, the output stays all zeros (and may itself be empty).
  for (const auto& [c, extent] : extents) {
    if (extent == 0) return out;
  }

  // Enumerate all distinct index characters; the joint assignment is an
  // odometer over their extents.
  std::vector<Label> chars;
  std::vector<int64_t> dims;
  for (const auto& [c, extent] : extents) {
    chars.push_back(c);
    dims.push_back(extent);
  }
  std::map<Label, int> char_pos;
  for (size_t k = 0; k < chars.size(); ++k) char_pos[chars[k]] = k;

  std::vector<int64_t> assignment(chars.size(), 0);
  std::vector<int64_t> coords;
  while (true) {
    // Product of the addressed input elements.
    V product = V(1);
    for (size_t t = 0; t < inputs.size(); ++t) {
      coords.clear();
      for (Label c : spec.inputs[t]) coords.push_back(assignment[char_pos[c]]);
      product *= (*inputs[t])[inputs[t]->FlatIndex(coords)];
    }
    coords.clear();
    for (Label c : spec.output) coords.push_back(assignment[char_pos[c]]);
    out[out.FlatIndex(coords)] += product;
    // Advance the odometer.
    int d = static_cast<int>(chars.size()) - 1;
    for (; d >= 0; --d) {
      if (++assignment[d] < dims[d]) break;
      assignment[d] = 0;
    }
    if (d < 0) break;
    if (chars.empty()) break;  // scalar-only expression: a single iteration
  }
  return out;
}

template <typename V>
Result<Dense<V>> ReferenceEinsum(std::string_view format,
                                 const std::vector<const Dense<V>*>& inputs) {
  EINSQL_ASSIGN_OR_RETURN(EinsumSpec spec, ParseEinsumFormat(format));
  return ReferenceEinsum(spec, inputs);
}

template <typename V>
Result<Coo<V>> ReferenceEinsumCoo(std::string_view format,
                                  const std::vector<const Coo<V>*>& inputs,
                                  double epsilon) {
  EINSQL_ASSIGN_OR_RETURN(EinsumSpec spec, ParseEinsumFormat(format));
  std::vector<Dense<V>> dense;
  dense.reserve(inputs.size());
  for (const Coo<V>* coo : inputs) {
    EINSQL_ASSIGN_OR_RETURN(Dense<V> d, Dense<V>::FromCoo(*coo));
    dense.push_back(std::move(d));
  }
  std::vector<const Dense<V>*> ptrs;
  for (const Dense<V>& d : dense) ptrs.push_back(&d);
  EINSQL_ASSIGN_OR_RETURN(Dense<V> result, ReferenceEinsum(spec, ptrs));
  return result.ToCoo(epsilon);
}

template Result<Dense<double>> ReferenceEinsum(
    const EinsumSpec&, const std::vector<const Dense<double>*>&);
template Result<Dense<std::complex<double>>> ReferenceEinsum(
    const EinsumSpec&, const std::vector<const Dense<std::complex<double>>*>&);
template Result<Dense<double>> ReferenceEinsum(
    std::string_view, const std::vector<const Dense<double>*>&);
template Result<Dense<std::complex<double>>> ReferenceEinsum(
    std::string_view, const std::vector<const Dense<std::complex<double>>*>&);
template Result<Coo<double>> ReferenceEinsumCoo(
    std::string_view, const std::vector<const Coo<double>*>&, double);
template Result<Coo<std::complex<double>>> ReferenceEinsumCoo(
    std::string_view, const std::vector<const Coo<std::complex<double>>*>&,
    double);

}  // namespace einsql
