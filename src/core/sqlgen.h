#ifndef EINSQL_CORE_SQLGEN_H_
#define EINSQL_CORE_SQLGEN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/program.h"
#include "tensor/coo.h"

namespace einsql {

/// Options controlling SQL generation.
///
/// The generator emits only portable constructs — CTEs, VALUES lists, inner
/// joins, WHERE equalities, GROUP BY, and SUM — so the same query string runs
/// unchanged on SQLite, MiniDB, PostgreSQL, etc. (§3.1).
struct SqlGenOptions {
  /// If true, decompose the expression into one CTE per contraction step
  /// following the program's path (§3.3). If false, emit a single flat query
  /// applying mapping rules R1–R4 once over all inputs (§3.2).
  bool decompose = true;

  /// If true, omit SUM/GROUP BY when a step performs no summation and no
  /// index is repeated (e.g. pure outer products).
  bool simplify = true;

  /// Tensor relations carry complex values as (re, im) column pairs, and
  /// every multiplication is expanded with the hard-coded complex product
  /// formula (§4.4). Requires `decompose` (or at most two inputs), because
  /// the expansion is defined for products of exactly two factors.
  bool complex_values = false;

  /// Names of existing tables holding the input tensors in COO schema
  /// (i0..ik-1, val) or (i0..ik-1, re, im). If empty, inputs must be passed
  /// inline to the generator and are emitted as VALUES CTEs named
  /// `inline_prefix`0, `inline_prefix`1, ...
  std::vector<std::string> input_names;

  /// Additional caller-supplied CTE definitions (without the WITH keyword)
  /// emitted before the generated ones; used e.g. by the triplestore module
  /// to define tensor slices that `input_names` then references.
  std::string prelude_ctes;

  /// Optional ORDER BY clause body appended to the final SELECT
  /// (e.g. "val DESC").
  std::string order_by;

  /// Name prefix for inlined input CTEs (default "T") and for intermediate
  /// contraction CTEs (default "K").
  std::string inline_prefix = "T";
  std::string intermediate_prefix = "K";
};

/// Renders a COO tensor as the body of a VALUES common table expression,
/// e.g. `T0(i0, i1, val) AS (VALUES (0, 0, 1.0), (1, 1, 2.0))`. Empty
/// tensors are rendered as a zero-row SELECT. Complex tensors produce
/// (.., re, im) rows.
std::string CooToValuesCte(const std::string& name, const CooTensor& tensor);
std::string CooToValuesCte(const std::string& name,
                           const ComplexCooTensor& tensor);

/// Generates a complete, portable Einstein summation SQL query for
/// `program`, inlining the given tensors as VALUES CTEs.
/// The result set has columns i0..i{k-1} plus val (or re, im).
Result<std::string> GenerateEinsumSql(const ContractionProgram& program,
                                      const std::vector<const CooTensor*>& tensors,
                                      const SqlGenOptions& options = {});

/// Complex-valued variant (sets complex semantics regardless of
/// options.complex_values). A distinct name rather than an overload so that
/// brace-enclosed tensor lists never hit the vector iterator-pair
/// constructor ambiguity.
Result<std::string> GenerateComplexEinsumSql(
    const ContractionProgram& program,
    const std::vector<const ComplexCooTensor*>& tensors,
    const SqlGenOptions& options = {});

/// Generates the query against existing tables; `options.input_names` must
/// name one stored relation (or prelude CTE) per program input.
Result<std::string> GenerateEinsumSqlForTables(const ContractionProgram& program,
                                               const SqlGenOptions& options);

}  // namespace einsql

#endif  // EINSQL_CORE_SQLGEN_H_
