#include "core/dense_exec.h"

#include <complex>

namespace einsql {

namespace {

Labels TermLabels(const Term& term) {
  Labels labels;
  labels.reserve(term.size());
  for (Label c : term) labels.push_back(static_cast<int>(c));
  return labels;
}

}  // namespace

template <typename V>
Result<Dense<V>> ExecuteProgramDense(
    const ContractionProgram& program,
    const std::vector<const Dense<V>*>& inputs) {
  if (static_cast<int>(inputs.size()) != program.num_inputs) {
    return Status::InvalidArgument("expected ", program.num_inputs,
                                   " tensors, got ", inputs.size());
  }
  for (int t = 0; t < program.num_inputs; ++t) {
    if (inputs[t]->rank() !=
        static_cast<int>(program.spec.inputs[t].size())) {
      return Status::InvalidArgument("tensor ", t, " rank mismatch");
    }
  }
  // Slot storage; inputs stay borrowed, intermediates are owned.
  std::vector<Dense<V>> intermediates;
  auto tensor_of = [&](int slot) -> const Dense<V>& {
    if (slot < program.num_inputs) return *inputs[slot];
    return intermediates[slot - program.num_inputs];
  };
  for (const ProgramStep& step : program.steps) {
    if (step.args.size() == 1) {
      EINSQL_ASSIGN_OR_RETURN(
          Dense<V> result,
          ReduceLabels(tensor_of(step.args[0]), TermLabels(step.arg_terms[0]),
                       TermLabels(step.result_term)));
      intermediates.push_back(std::move(result));
    } else {
      EINSQL_ASSIGN_OR_RETURN(
          Dense<V> result,
          ContractPair(tensor_of(step.args[0]), TermLabels(step.arg_terms[0]),
                       tensor_of(step.args[1]), TermLabels(step.arg_terms[1]),
                       TermLabels(step.result_term)));
      intermediates.push_back(std::move(result));
    }
  }
  // Identity programs return a copy of the input.
  return tensor_of(program.result_slot);
}

template <typename V>
Result<Coo<V>> ExecuteProgramDenseCoo(const ContractionProgram& program,
                                      const std::vector<const Coo<V>*>& inputs,
                                      double epsilon) {
  std::vector<Dense<V>> dense;
  dense.reserve(inputs.size());
  for (const Coo<V>* coo : inputs) {
    EINSQL_ASSIGN_OR_RETURN(Dense<V> d, Dense<V>::FromCoo(*coo));
    dense.push_back(std::move(d));
  }
  std::vector<const Dense<V>*> ptrs;
  ptrs.reserve(dense.size());
  for (const Dense<V>& d : dense) ptrs.push_back(&d);
  EINSQL_ASSIGN_OR_RETURN(Dense<V> result,
                          ExecuteProgramDense(program, ptrs));
  return result.ToCoo(epsilon);
}

template Result<Dense<double>> ExecuteProgramDense(
    const ContractionProgram&, const std::vector<const Dense<double>*>&);
template Result<Dense<std::complex<double>>> ExecuteProgramDense(
    const ContractionProgram&,
    const std::vector<const Dense<std::complex<double>>*>&);
template Result<Coo<double>> ExecuteProgramDenseCoo(
    const ContractionProgram&, const std::vector<const Coo<double>*>&, double);
template Result<Coo<std::complex<double>>> ExecuteProgramDenseCoo(
    const ContractionProgram&,
    const std::vector<const Coo<std::complex<double>>*>&, double);

}  // namespace einsql
