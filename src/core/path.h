#ifndef EINSQL_CORE_PATH_H_
#define EINSQL_CORE_PATH_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "core/format.h"
#include <vector>

#include "common/result.h"

namespace einsql {

/// Contraction-path search strategy (the opt_einsum work-alike of §3.3).
enum class PathAlgorithm {
  /// Contract operands left-to-right, as a query engine would join them in
  /// FROM-clause order. The baseline for the decomposition ablation.
  kNaive,
  /// Repeatedly contracts the pair with the best
  /// size(result) - size(lhs) - size(rhs) heuristic, preferring pairs that
  /// share an index; scales to thousands of tensors (opt_einsum "greedy").
  kGreedy,
  /// Bucket / variable elimination: repeatedly eliminates the summation
  /// index whose bucket (the union of all operands containing it) is
  /// smallest, contracting that bucket pairwise. Far more robust than
  /// kGreedy on large tensor networks (SAT formulas, graphical models,
  /// circuits), where pairwise greedy is known to wander into huge
  /// intermediates.
  kElimination,
  /// Depth-first branch-and-bound over pairwise choices, expanding only the
  /// most promising few pairs per level and pruning against the best
  /// complete path found so far (opt_einsum "branch-2"). Near-optimal on
  /// mid-sized expressions where the exact DP is already infeasible.
  kBranch,
  /// Exact dynamic program over operand subsets; optimal flop count but
  /// exponential, limited to at most 16 operands (opt_einsum "optimal"/"dp").
  kOptimal,
  /// kOptimal for small expressions, best-of(kGreedy, kElimination)
  /// otherwise.
  kAuto,
};

/// Returns "naive"/"greedy"/"optimal"/"auto".
const char* PathAlgorithmToString(PathAlgorithm algorithm);

/// A pairwise contraction sequence using the opt_einsum convention: each step
/// names two positions in the *current* operand list; both operands are
/// removed and the intermediate result is appended at the end of the list.
struct ContractionPath {
  /// Pairs of operand positions, one entry per contraction step.
  std::vector<std::pair<int, int>> pairs;
  /// Estimated total flop count of the whole contraction.
  double est_flops = 0.0;
  /// Number of elements of the largest intermediate tensor.
  double largest_intermediate = 0.0;
  /// The algorithm that produced the path.
  PathAlgorithm algorithm = PathAlgorithm::kAuto;
};

/// Computes the indices of the intermediate produced by contracting `lhs`
/// and `rhs` while the terms in `remaining` are still pending: every index
/// that also occurs in `output` or in a remaining term survives, ordered by
/// first occurrence in lhs then rhs.
Term IntermediateTerm(const Term& lhs, const Term& rhs,
                             const std::vector<Term>& remaining,
                             const Term& output);

/// Finds a pairwise contraction path for `terms` (each term must already be
/// duplicate-free; see BuildProgram for the pre-reduction pass). Requires at
/// least two terms. kOptimal fails with InvalidArgument beyond 16 terms.
Result<ContractionPath> FindPath(const std::vector<Term>& terms,
                                 const Term& output,
                                 const Extents& extents,
                                 PathAlgorithm algorithm);

}  // namespace einsql

#endif  // EINSQL_CORE_PATH_H_
