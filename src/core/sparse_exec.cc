#include "core/sparse_exec.h"

#include <complex>

namespace einsql {

namespace {

Labels TermLabels(const Term& term) {
  Labels labels;
  labels.reserve(term.size());
  for (Label c : term) labels.push_back(static_cast<int>(c));
  return labels;
}

}  // namespace

template <typename V>
Result<Coo<V>> ExecuteProgramSparse(const ContractionProgram& program,
                                    const std::vector<const Coo<V>*>& inputs,
                                    double epsilon) {
  if (static_cast<int>(inputs.size()) != program.num_inputs) {
    return Status::InvalidArgument("expected ", program.num_inputs,
                                   " tensors, got ", inputs.size());
  }
  for (int t = 0; t < program.num_inputs; ++t) {
    if (inputs[t]->rank() !=
        static_cast<int>(program.spec.inputs[t].size())) {
      return Status::InvalidArgument("tensor ", t, " rank mismatch");
    }
  }
  std::vector<Coo<V>> intermediates;
  auto tensor_of = [&](int slot) -> const Coo<V>& {
    if (slot < program.num_inputs) return *inputs[slot];
    return intermediates[slot - program.num_inputs];
  };
  for (const ProgramStep& step : program.steps) {
    if (step.args.size() == 1) {
      EINSQL_ASSIGN_OR_RETURN(
          Coo<V> result,
          SparseReduceLabels(tensor_of(step.args[0]),
                             TermLabels(step.arg_terms[0]),
                             TermLabels(step.result_term)));
      intermediates.push_back(std::move(result));
    } else {
      EINSQL_ASSIGN_OR_RETURN(
          Coo<V> result,
          SparseContractPair(tensor_of(step.args[0]),
                             TermLabels(step.arg_terms[0]),
                             tensor_of(step.args[1]),
                             TermLabels(step.arg_terms[1]),
                             TermLabels(step.result_term)));
      intermediates.push_back(std::move(result));
    }
  }
  Coo<V> result = tensor_of(program.result_slot);
  result.Coalesce(epsilon);
  return result;
}

template Result<Coo<double>> ExecuteProgramSparse(
    const ContractionProgram&, const std::vector<const Coo<double>*>&, double);
template Result<Coo<std::complex<double>>> ExecuteProgramSparse(
    const ContractionProgram&,
    const std::vector<const Coo<std::complex<double>>*>&, double);

}  // namespace einsql
