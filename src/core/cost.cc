#include "core/cost.h"

#include <set>

namespace einsql {

double TermSize(const Term& term,
                const Extents& extents) {
  double size = 1.0;
  std::set<Label> seen;
  for (Label c : term) {
    if (!seen.insert(c).second) continue;
    auto it = extents.find(c);
    size *= it == extents.end() ? 1.0 : static_cast<double>(it->second);
  }
  return size;
}

double PairContractionCost(const Term& lhs, const Term& rhs,
                           const Term& result,
                           const Extents& extents) {
  (void)result;  // the union of lhs/rhs always covers the result indices
  return TermSize(lhs + rhs, extents);
}

double UnaryReductionCost(const Term& term,
                          const Extents& extents) {
  return TermSize(term, extents);
}

}  // namespace einsql
