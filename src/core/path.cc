#include "core/path.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <limits>
#include <set>

#include "core/cost.h"

namespace einsql {

const char* PathAlgorithmToString(PathAlgorithm algorithm) {
  switch (algorithm) {
    case PathAlgorithm::kNaive:
      return "naive";
    case PathAlgorithm::kGreedy:
      return "greedy";
    case PathAlgorithm::kElimination:
      return "elimination";
    case PathAlgorithm::kBranch:
      return "branch";
    case PathAlgorithm::kOptimal:
      return "optimal";
    case PathAlgorithm::kAuto:
      return "auto";
  }
  return "unknown";
}

Term IntermediateTerm(const Term& lhs, const Term& rhs,
                             const std::vector<Term>& remaining,
                             const Term& output) {
  Term result;
  auto needed = [&](Label c) {
    if (output.find(c) != Term::npos) return true;
    for (const Term& term : remaining) {
      if (term.find(c) != Term::npos) return true;
    }
    return false;
  };
  for (Label c : lhs + rhs) {
    if (result.find(c) == Term::npos && needed(c)) result.push_back(c);
  }
  return result;
}

namespace {

// Replays `pairs` over `terms`, filling in flop and size statistics.
// Returns an error if any position is out of range.
Status Replay(const std::vector<Term>& terms, const Term& output,
              const Extents& extents, ContractionPath* path) {
  std::vector<Term> ops = terms;
  path->est_flops = 0.0;
  path->largest_intermediate = 0.0;
  for (auto [i, j] : path->pairs) {
    if (i == j || i < 0 || j < 0 || i >= static_cast<int>(ops.size()) ||
        j >= static_cast<int>(ops.size())) {
      return Status::Internal("invalid contraction path positions");
    }
    if (i > j) std::swap(i, j);
    const Term lhs = ops[i];
    const Term rhs = ops[j];
    ops.erase(ops.begin() + j);
    ops.erase(ops.begin() + i);
    const Term result = IntermediateTerm(lhs, rhs, ops, output);
    path->est_flops += PairContractionCost(lhs, rhs, result, extents);
    path->largest_intermediate =
        std::max(path->largest_intermediate, TermSize(result, extents));
    ops.push_back(result);
  }
  if (ops.size() != 1) {
    return Status::Internal("contraction path does not reduce to one operand");
  }
  return Status::OK();
}

ContractionPath NaivePath(int num_terms) {
  ContractionPath path;
  path.algorithm = PathAlgorithm::kNaive;
  for (int step = 0; step + 1 < num_terms; ++step) {
    path.pairs.emplace_back(0, 1);
  }
  return path;
}

ContractionPath GreedyPath(const std::vector<Term>& terms,
                           const Term& output,
                           const Extents& extents) {
  ContractionPath path;
  path.algorithm = PathAlgorithm::kGreedy;
  // Alive operands are identified by their position in `slots`; the path
  // convention needs positions in the *compacted* list, so we re-derive the
  // compacted position from the alive prefix at emission time.
  std::vector<Term> ops = terms;
  while (ops.size() > 1) {
    // Enumerate candidate pairs that share at least one index character.
    const int n = static_cast<int>(ops.size());
    int best_i = -1, best_j = -1;
    double best_gain = std::numeric_limits<double>::infinity();
    double best_cost = std::numeric_limits<double>::infinity();
    Term best_result;
    // Map each char to the operands containing it to avoid O(n^2) full scan.
    std::map<Label, std::vector<int>> by_char;
    for (int i = 0; i < n; ++i) {
      std::set<Label> seen;
      for (Label c : ops[i]) {
        if (seen.insert(c).second) by_char[c].push_back(i);
      }
    }
    std::set<std::pair<int, int>> candidates;
    for (const auto& [c, holders] : by_char) {
      for (size_t a = 0; a < holders.size(); ++a) {
        for (size_t b = a + 1; b < holders.size(); ++b) {
          candidates.emplace(holders[a], holders[b]);
        }
      }
    }
    if (candidates.empty()) {
      // Disconnected network: contract the two smallest operands (outer
      // product), mirroring opt_einsum's tail phase.
      std::vector<int> order(n);
      for (int i = 0; i < n; ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        double sa = TermSize(ops[a], extents), sb = TermSize(ops[b], extents);
        if (sa != sb) return sa < sb;
        return a < b;
      });
      candidates.emplace(std::min(order[0], order[1]),
                         std::max(order[0], order[1]));
    }
    for (auto [i, j] : candidates) {
      std::vector<Term> remaining;
      remaining.reserve(n - 2);
      for (int k = 0; k < n; ++k) {
        if (k != i && k != j) remaining.push_back(ops[k]);
      }
      const Term result =
          IntermediateTerm(ops[i], ops[j], remaining, output);
      const double gain = TermSize(result, extents) -
                          TermSize(ops[i], extents) -
                          TermSize(ops[j], extents);
      const double cost = PairContractionCost(ops[i], ops[j], result, extents);
      if (gain < best_gain || (gain == best_gain && cost < best_cost)) {
        best_gain = gain;
        best_cost = cost;
        best_i = i;
        best_j = j;
        best_result = result;
      }
    }
    path.pairs.emplace_back(best_i, best_j);
    ops.erase(ops.begin() + best_j);
    ops.erase(ops.begin() + best_i);
    ops.push_back(best_result);
  }
  return path;
}

ContractionPath EliminationPath(const std::vector<Term>& terms,
                                const Term& output, const Extents& extents);

// Depth-first branch-and-bound over pairwise contractions ("branch-2"):
// at every level only the `kBranchFactor` most promising candidate pairs
// (by the greedy gain heuristic) are expanded, and subtrees whose partial
// cost already exceeds the best complete path are pruned. Seeded with the
// better of greedy and elimination so pruning bites immediately.
ContractionPath BranchPath(const std::vector<Term>& terms, const Term& output,
                           const Extents& extents) {
  constexpr int kBranchFactor = 2;
  constexpr int64_t kNodeBudget = 200'000;

  // Seed the bound with the better heuristic path.
  ContractionPath best = GreedyPath(terms, output, extents);
  (void)Replay(terms, output, extents, &best);
  {
    ContractionPath elimination = EliminationPath(terms, output, extents);
    if (Replay(terms, output, extents, &elimination).ok() &&
        elimination.est_flops < best.est_flops) {
      best = elimination;
    }
  }
  double best_cost = best.est_flops;

  int64_t nodes = 0;
  std::vector<std::pair<int, int>> current;
  std::function<void(std::vector<Term>&, double)> search =
      [&](std::vector<Term>& ops, double cost_so_far) {
        if (++nodes > kNodeBudget) return;
        if (cost_so_far >= best_cost) return;  // prune
        const int n = static_cast<int>(ops.size());
        if (n == 1) {
          best.pairs = current;
          best.algorithm = PathAlgorithm::kBranch;
          best_cost = cost_so_far;
          return;
        }
        // Rank candidate pairs by the greedy gain heuristic; expand the
        // top kBranchFactor.
        struct Candidate {
          int i, j;
          double gain, cost;
          Term result;
        };
        std::vector<Candidate> candidates;
        for (int i = 0; i < n; ++i) {
          for (int j = i + 1; j < n; ++j) {
            bool shares = false;
            for (Label c : ops[i]) {
              if (ops[j].find(c) != Term::npos) {
                shares = true;
                break;
              }
            }
            if (!shares && n > 2) continue;  // defer outer products
            std::vector<Term> remaining;
            for (int k = 0; k < n; ++k) {
              if (k != i && k != j) remaining.push_back(ops[k]);
            }
            Candidate candidate;
            candidate.i = i;
            candidate.j = j;
            candidate.result =
                IntermediateTerm(ops[i], ops[j], remaining, output);
            candidate.cost =
                PairContractionCost(ops[i], ops[j], candidate.result, extents);
            candidate.gain = TermSize(candidate.result, extents) -
                             TermSize(ops[i], extents) -
                             TermSize(ops[j], extents);
            candidates.push_back(std::move(candidate));
          }
        }
        if (candidates.empty()) {
          // Fully disconnected: fold the first two operands.
          std::vector<Term> remaining(ops.begin() + 2, ops.end());
          Candidate candidate;
          candidate.i = 0;
          candidate.j = 1;
          candidate.result = IntermediateTerm(ops[0], ops[1], remaining, output);
          candidate.cost =
              PairContractionCost(ops[0], ops[1], candidate.result, extents);
          candidate.gain = 0.0;
          candidates.push_back(std::move(candidate));
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const Candidate& a, const Candidate& b) {
                    if (a.gain != b.gain) return a.gain < b.gain;
                    return a.cost < b.cost;
                  });
        const int expand =
            std::min<int>(kBranchFactor, static_cast<int>(candidates.size()));
        for (int c = 0; c < expand; ++c) {
          const Candidate& candidate = candidates[c];
          std::vector<Term> next = ops;
          next.erase(next.begin() + candidate.j);
          next.erase(next.begin() + candidate.i);
          next.push_back(candidate.result);
          current.emplace_back(candidate.i, candidate.j);
          search(next, cost_so_far + candidate.cost);
          current.pop_back();
        }
      };
  std::vector<Term> ops = terms;
  search(ops, 0.0);
  return best;
}

// Bucket / variable elimination: the classical evaluation strategy for
// tensor networks with many small tensors. In each round, the summation
// label whose bucket (union of the operands containing it) is cheapest is
// eliminated by contracting the bucket pairwise; surviving operands are
// finally folded together.
ContractionPath EliminationPath(const std::vector<Term>& terms,
                                const Term& output, const Extents& extents) {
  ContractionPath path;
  path.algorithm = PathAlgorithm::kElimination;
  std::vector<Term> ops = terms;

  auto emit_fold = [&](std::vector<int> positions) {
    // Contracts the operands at `positions` pairwise, left-to-right,
    // updating `ops` and the path. Positions must be sorted ascending.
    while (positions.size() > 1) {
      const int i = positions[0];
      const int j = positions[1];
      path.pairs.emplace_back(i, j);
      const Term lhs = ops[i];
      const Term rhs = ops[j];
      ops.erase(ops.begin() + j);
      ops.erase(ops.begin() + i);
      const Term result = IntermediateTerm(lhs, rhs, ops, output);
      ops.push_back(result);
      // Remaining positions shift: every position p > j decreases by 2,
      // positions between i and j decrease by 1 (i < p < j), and the merge
      // result sits at the end.
      std::vector<int> updated;
      updated.push_back(static_cast<int>(ops.size()) - 1);
      for (size_t k = 2; k < positions.size(); ++k) {
        int p = positions[k];
        p -= (p > i ? 1 : 0) + (p > j ? 1 : 0);
        updated.push_back(p);
      }
      std::sort(updated.begin(), updated.end());
      positions = std::move(updated);
    }
  };

  while (true) {
    // Buckets of all summation labels still alive.
    std::map<Label, std::vector<int>> buckets;
    for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
      std::set<Label> seen;
      for (Label c : ops[i]) {
        if (output.find(c) != Term::npos) continue;
        if (seen.insert(c).second) buckets[c].push_back(i);
      }
    }
    // Drop labels held by a single operand: a pairwise step elsewhere (or
    // the final fold) sums them away for free.
    for (auto it = buckets.begin(); it != buckets.end();) {
      if (it->second.size() < 2) {
        it = buckets.erase(it);
      } else {
        ++it;
      }
    }
    if (buckets.empty()) break;
    // Cheapest bucket: smallest union size; tie-break by fewer operands.
    Label best_label = 0;
    double best_size = std::numeric_limits<double>::infinity();
    size_t best_count = 0;
    for (const auto& [label, members] : buckets) {
      Term merged;
      for (int i : members) merged += ops[i];
      const double size = TermSize(merged, extents);
      if (size < best_size ||
          (size == best_size && members.size() < best_count)) {
        best_label = label;
        best_size = size;
        best_count = members.size();
      }
    }
    emit_fold(buckets[best_label]);
  }
  // Fold whatever is left (outer products of survivors).
  if (ops.size() > 1) {
    std::vector<int> positions;
    for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
      positions.push_back(i);
    }
    emit_fold(std::move(positions));
  }
  return path;
}

// Exact subset dynamic program (opt_einsum "optimal").
Result<ContractionPath> OptimalPath(const std::vector<Term>& terms,
                                    const Term& output,
                                    const Extents& extents) {
  const int n = static_cast<int>(terms.size());
  if (n > 16) {
    return Status::InvalidArgument(
        "optimal path search supports at most 16 operands, got ", n);
  }
  const uint32_t full = (n == 32 ? ~0u : (1u << n) - 1);

  // term_of[mask]: surviving indices of the subtree covering `mask`.
  std::vector<Term> term_of(full + 1);
  auto compute_term = [&](uint32_t mask) {
    Term inside;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        for (Label c : terms[i]) {
          if (inside.find(c) == Term::npos) inside.push_back(c);
        }
      }
    }
    Term survivors;
    for (Label c : inside) {
      bool needed = output.find(c) != Term::npos;
      for (int i = 0; i < n && !needed; ++i) {
        if (!(mask & (1u << i)) &&
            terms[i].find(c) != Term::npos) {
          needed = true;
        }
      }
      if (needed) survivors.push_back(c);
    }
    return survivors;
  };
  for (uint32_t mask = 1; mask <= full; ++mask) term_of[mask] = compute_term(mask);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> cost(full + 1, kInf);
  std::vector<uint32_t> split(full + 1, 0);
  for (int i = 0; i < n; ++i) cost[1u << i] = 0.0;
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (std::popcount(mask) < 2) continue;
    // Enumerate submask splits; canonicalize by keeping the lowest set bit
    // on the left side to halve the work.
    const uint32_t low = mask & (~mask + 1);
    for (uint32_t sub = (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask) {
      if (!(sub & low)) continue;
      const uint32_t rest = mask ^ sub;
      if (cost[sub] == kInf || cost[rest] == kInf) continue;
      const double c = cost[sub] + cost[rest] +
                       PairContractionCost(term_of[sub], term_of[rest],
                                           term_of[mask], extents);
      if (c < cost[mask]) {
        cost[mask] = c;
        split[mask] = sub;
      }
    }
  }

  // Convert the binary contraction tree to opt_einsum position pairs by
  // simulating the operand list.
  ContractionPath path;
  path.algorithm = PathAlgorithm::kOptimal;
  std::vector<uint32_t> slots;
  for (int i = 0; i < n; ++i) slots.push_back(1u << i);
  auto position_of = [&](uint32_t mask) {
    for (size_t k = 0; k < slots.size(); ++k) {
      if (slots[k] == mask) return static_cast<int>(k);
    }
    return -1;
  };
  // Iterative post-order emission.
  struct Frame {
    uint32_t mask;
    bool expanded;
  };
  std::vector<Frame> stack{{full, false}};
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    if (std::popcount(frame.mask) < 2) continue;
    if (!frame.expanded) {
      stack.push_back({frame.mask, true});
      stack.push_back({split[frame.mask], false});
      stack.push_back({frame.mask ^ split[frame.mask], false});
      continue;
    }
    int pi = position_of(split[frame.mask]);
    int pj = position_of(frame.mask ^ split[frame.mask]);
    if (pi > pj) std::swap(pi, pj);
    path.pairs.emplace_back(pi, pj);
    slots.erase(slots.begin() + pj);
    slots.erase(slots.begin() + pi);
    slots.push_back(frame.mask);
  }
  return path;
}

}  // namespace

Result<ContractionPath> FindPath(const std::vector<Term>& terms,
                                 const Term& output,
                                 const Extents& extents,
                                 PathAlgorithm algorithm) {
  if (terms.size() < 2) {
    return Status::InvalidArgument("FindPath requires at least two operands");
  }
  ContractionPath path;
  switch (algorithm) {
    case PathAlgorithm::kNaive:
      path = NaivePath(static_cast<int>(terms.size()));
      break;
    case PathAlgorithm::kGreedy:
      path = GreedyPath(terms, output, extents);
      break;
    case PathAlgorithm::kElimination:
      path = EliminationPath(terms, output, extents);
      break;
    case PathAlgorithm::kBranch:
      path = BranchPath(terms, output, extents);
      break;
    case PathAlgorithm::kOptimal: {
      EINSQL_ASSIGN_OR_RETURN(path, OptimalPath(terms, output, extents));
      break;
    }
    case PathAlgorithm::kAuto: {
      if (terms.size() <= 10) {
        EINSQL_ASSIGN_OR_RETURN(path, OptimalPath(terms, output, extents));
      } else {
        // Best of the two scalable heuristics by estimated flops.
        ContractionPath greedy = GreedyPath(terms, output, extents);
        EINSQL_RETURN_IF_ERROR(Replay(terms, output, extents, &greedy));
        ContractionPath elimination =
            EliminationPath(terms, output, extents);
        EINSQL_RETURN_IF_ERROR(Replay(terms, output, extents, &elimination));
        return greedy.est_flops <= elimination.est_flops ? greedy
                                                         : elimination;
      }
      break;
    }
  }
  EINSQL_RETURN_IF_ERROR(Replay(terms, output, extents, &path));
  return path;
}

}  // namespace einsql
