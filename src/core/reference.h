#ifndef EINSQL_CORE_REFERENCE_H_
#define EINSQL_CORE_REFERENCE_H_

#include <vector>

#include "common/result.h"
#include "core/format.h"
#include "tensor/dense.h"

namespace einsql {

/// Brute-force Einstein summation oracle: evaluates `spec` by a single set
/// of nested for-loops over the full joint index space, exactly as in the
/// paper's Listing 1/2. Exponential in the number of distinct indices —
/// intended purely as the ground truth for tests.
template <typename V>
Result<Dense<V>> ReferenceEinsum(const EinsumSpec& spec,
                                 const std::vector<const Dense<V>*>& inputs);

/// Convenience wrapper around ParseEinsumFormat + ReferenceEinsum.
template <typename V>
Result<Dense<V>> ReferenceEinsum(std::string_view format,
                                 const std::vector<const Dense<V>*>& inputs);

/// COO-in / COO-out convenience wrapper.
template <typename V>
Result<Coo<V>> ReferenceEinsumCoo(std::string_view format,
                                  const std::vector<const Coo<V>*>& inputs,
                                  double epsilon = 0.0);

}  // namespace einsql

#endif  // EINSQL_CORE_REFERENCE_H_
