#include "core/format.h"

#include <algorithm>
#include <cctype>

#include "common/str_util.h"

namespace einsql {

Term ToTerm(std::string_view ascii) {
  Term term;
  term.reserve(ascii.size());
  for (char c : ascii) term.push_back(static_cast<unsigned char>(c));
  return term;
}

std::string TermToString(const Term& term) {
  std::string out;
  for (Label label : term) {
    if (label < 128 && std::isprint(static_cast<int>(label))) {
      out.push_back(static_cast<char>(label));
    } else {
      out += "#" + std::to_string(static_cast<uint32_t>(label));
    }
  }
  return out;
}

namespace {

bool IsIndexChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0;
}

Status ValidateAsciiTerm(std::string_view term) {
  for (char c : term) {
    if (!IsIndexChar(c)) {
      return Status::ParseError("invalid index character '", std::string(1, c),
                                "' in term '", term, "'");
    }
  }
  return Status::OK();
}

std::string StripSpaces(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (!std::isspace(static_cast<unsigned char>(c))) out.push_back(c);
  }
  return out;
}

}  // namespace

std::string EinsumSpec::ToString() const {
  std::string out;
  for (size_t t = 0; t < inputs.size(); ++t) {
    if (t > 0) out += ",";
    out += TermToString(inputs[t]);
  }
  out += "->";
  out += TermToString(output);
  return out;
}

Result<EinsumSpec> ParseEinsumFormat(std::string_view format) {
  const std::string clean = StripSpaces(format);
  if (clean.empty()) return Status::ParseError("empty format string");

  EinsumSpec spec;
  std::string lhs = clean;
  bool has_arrow = false;
  std::string output_ascii;
  const size_t arrow = clean.find("->");
  if (arrow != std::string::npos) {
    if (clean.find("->", arrow + 2) != std::string::npos) {
      return Status::ParseError("multiple '->' in format string");
    }
    has_arrow = true;
    lhs = clean.substr(0, arrow);
    output_ascii = clean.substr(arrow + 2);
  }
  if (lhs.empty()) return Status::ParseError("no input terms before '->'");
  for (const std::string& term : Split(lhs, ',')) {
    EINSQL_RETURN_IF_ERROR(ValidateAsciiTerm(term));
    spec.inputs.push_back(ToTerm(term));
  }
  EINSQL_RETURN_IF_ERROR(ValidateAsciiTerm(output_ascii));
  spec.output = ToTerm(output_ascii);

  if (!has_arrow) {
    // Classic implicit mode: indices that appear exactly once, sorted.
    std::map<Label, int> occurrences;
    for (const Term& term : spec.inputs) {
      for (Label c : term) ++occurrences[c];
    }
    spec.output.clear();
    for (const auto& [c, n] : occurrences) {  // std::map is ordered
      if (n == 1) spec.output.push_back(c);
    }
    return spec;
  }
  EINSQL_RETURN_IF_ERROR(ValidateSpec(spec));
  return spec;
}

Status ValidateSpec(const EinsumSpec& spec) {
  if (spec.inputs.empty()) {
    return Status::InvalidArgument("expression has no input tensors");
  }
  std::map<Label, int> occurrences;
  for (const Term& term : spec.inputs) {
    for (Label c : term) ++occurrences[c];
  }
  std::map<Label, int> seen;
  for (Label c : spec.output) {
    if (++seen[c] > 1) {
      return Status::ParseError("output index '",
                                TermToString(Term(1, c)), "' repeated");
    }
    if (occurrences.find(c) == occurrences.end()) {
      return Status::ParseError("output index '", TermToString(Term(1, c)),
                                "' does not appear in any input");
    }
  }
  return Status::OK();
}

Result<Extents> IndexExtents(const EinsumSpec& spec,
                             const std::vector<Shape>& shapes) {
  if (shapes.size() != spec.inputs.size()) {
    return Status::InvalidArgument("expected ", spec.inputs.size(),
                                   " tensors, got ", shapes.size());
  }
  Extents extents;
  for (size_t t = 0; t < shapes.size(); ++t) {
    const Term& term = spec.inputs[t];
    if (shapes[t].size() != term.size()) {
      return Status::InvalidArgument(
          "tensor ", t, " has rank ", shapes[t].size(), " but term '",
          TermToString(term), "' implies rank ", term.size());
    }
    for (size_t d = 0; d < term.size(); ++d) {
      auto [it, inserted] = extents.emplace(term[d], shapes[t][d]);
      if (!inserted && it->second != shapes[t][d]) {
        return Status::InvalidArgument(
            "index '", TermToString(Term(1, term[d])),
            "' has conflicting extents ", it->second, " and ", shapes[t][d]);
      }
    }
  }
  return extents;
}

Result<Shape> OutputShape(const EinsumSpec& spec, const Extents& extents) {
  Shape shape;
  for (Label c : spec.output) {
    auto it = extents.find(c);
    if (it == extents.end()) {
      return Status::InvalidArgument("no extent known for output index '",
                                     TermToString(Term(1, c)), "'");
    }
    shape.push_back(it->second);
  }
  return shape;
}

Term SummationIndices(const EinsumSpec& spec) {
  Term summed;
  for (const Term& term : spec.inputs) {
    for (Label c : term) {
      if (spec.output.find(c) == Term::npos &&
          summed.find(c) == Term::npos) {
        summed.push_back(c);
      }
    }
  }
  return summed;
}

}  // namespace einsql
