#ifndef EINSQL_CORE_DENSE_EXEC_H_
#define EINSQL_CORE_DENSE_EXEC_H_

#include <vector>

#include "common/result.h"
#include "core/program.h"
#include "tensor/contract.h"
#include "tensor/dense.h"

namespace einsql {

/// Executes a contraction program on dense tensors by pairwise contraction,
/// exactly the strategy of opt_einsum with a NumPy backend: unary steps run
/// ReduceLabels, pairwise steps run ContractPair. This is the dense
/// reference backend the paper benchmarks SQL against. Each pairwise step
/// bottoms out in the cache-blocked GEMM kernel of tensor/gemm.h (register
/// tiles + packed A panels; see docs/kernels.md for tile sizes).
template <typename V>
Result<Dense<V>> ExecuteProgramDense(const ContractionProgram& program,
                                     const std::vector<const Dense<V>*>& inputs);

/// Convenience wrapper: densifies COO inputs, executes, and sparsifies the
/// result (entries with magnitude <= epsilon are dropped).
template <typename V>
Result<Coo<V>> ExecuteProgramDenseCoo(const ContractionProgram& program,
                                      const std::vector<const Coo<V>*>& inputs,
                                      double epsilon = 0.0);

}  // namespace einsql

#endif  // EINSQL_CORE_DENSE_EXEC_H_
