#ifndef EINSQL_CORE_FORMAT_H_
#define EINSQL_CORE_FORMAT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "tensor/shape.h"

namespace einsql {

/// An index label. Format strings use ASCII letters, but programmatically
/// constructed expressions (e.g. SAT tensor networks with hundreds of
/// variables, §4.2) may use any 32-bit label — far beyond the 52 letters a
/// textual format string can name, and beyond NumPy's 32-dimension ceiling
/// the paper reports hitting.
using Label = char32_t;

/// The index string of one tensor: a sequence of labels.
using Term = std::u32string;

/// Extent of every index label in an expression.
using Extents = std::map<Label, int64_t>;

/// Widens an ASCII index string ("ik") to a Term.
Term ToTerm(std::string_view ascii);

/// Renders a term for diagnostics: ASCII labels print as themselves,
/// anything else as "#<value>".
std::string TermToString(const Term& term);

/// A parsed tensor expression in Einstein notation (§2).
///
/// `inputs[t]` holds the index term of the t-th input tensor; `output`
/// holds the labels that remain after evaluation. An empty term denotes a
/// scalar (rank-0 tensor). Example: "ik,jk,j->i" parses to
/// inputs = {ik, jk, j}, output = i.
struct EinsumSpec {
  std::vector<Term> inputs;
  Term output;

  /// Renders the spec back to a format string with the modern arrow
  /// (non-ASCII labels render as "#<value>").
  std::string ToString() const;

  /// Number of input tensors.
  int num_inputs() const { return static_cast<int>(inputs.size()); }
};

/// Parses a format string in modern ("ik,jk,j->i") or classic implicit
/// ("ik,jk,j") Einstein notation. In classic mode the output consists of the
/// indices that appear exactly once across all inputs, in alphabetical order
/// (NumPy's convention). Index characters must be ASCII letters.
///
/// Validation errors (repeated output index, output index absent from every
/// input, illegal characters, empty string) are reported as ParseError /
/// InvalidArgument.
Result<EinsumSpec> ParseEinsumFormat(std::string_view format);

/// Validates a programmatically built spec (labels are unconstrained):
/// output labels must be unique and present in some input.
Status ValidateSpec(const EinsumSpec& spec);

/// Derives the extent of every index label from the input shapes, and
/// verifies rank agreement and extent consistency across tensors sharing an
/// index (§2: axes sharing an index must have the same size).
Result<Extents> IndexExtents(const EinsumSpec& spec,
                             const std::vector<Shape>& shapes);

/// The shape of the output tensor under `extents`.
Result<Shape> OutputShape(const EinsumSpec& spec, const Extents& extents);

/// Indices that are summed over (present in some input, absent from output),
/// in order of first appearance.
Term SummationIndices(const EinsumSpec& spec);

}  // namespace einsql

#endif  // EINSQL_CORE_FORMAT_H_
