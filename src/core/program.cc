#include "core/program.h"

#include <algorithm>

#include "core/cost.h"

namespace einsql {

const Term& ContractionProgram::TermOfSlot(int slot) const {
  if (slot < num_inputs) return spec.inputs[slot];
  return steps[slot - num_inputs].result_term;
}

namespace {

struct Operand {
  int slot;
  Term term;
};

// Unique characters of `term` in first-occurrence order that are needed
// downstream: present in the output or in any other operand's term.
Term KeepSet(const Term& term, size_t self,
                    const std::vector<Term>& all_terms,
                    const Term& output) {
  Term keep;
  for (Label c : term) {
    if (keep.find(c) != Term::npos) continue;
    bool needed = output.find(c) != Term::npos;
    for (size_t t = 0; t < all_terms.size() && !needed; ++t) {
      if (t != self && all_terms[t].find(c) != Term::npos) {
        needed = true;
      }
    }
    if (needed) keep.push_back(c);
  }
  return keep;
}

}  // namespace

Result<ContractionProgram> BuildProgram(const EinsumSpec& spec,
                                        const std::vector<Shape>& shapes,
                                        PathAlgorithm algorithm) {
  ContractionProgram program;
  EINSQL_RETURN_IF_ERROR(ValidateSpec(spec));
  program.spec = spec;
  EINSQL_ASSIGN_OR_RETURN(program.extents, IndexExtents(spec, shapes));
  program.num_inputs = spec.num_inputs();
  program.algorithm = algorithm;
  int next_slot = program.num_inputs;

  // Phase 1: pre-reduce inputs with repeated or immediately-summable indices.
  std::vector<Operand> alive;
  for (int t = 0; t < spec.num_inputs(); ++t) {
    const Term& term = spec.inputs[t];
    const Term keep = KeepSet(term, t, spec.inputs, spec.output);
    if (keep == term) {
      alive.push_back({t, term});
      continue;
    }
    ProgramStep step;
    step.args = {t};
    step.arg_terms = {term};
    step.result_term = keep;
    step.result_slot = next_slot++;
    program.est_flops += UnaryReductionCost(term, program.extents);
    alive.push_back({step.result_slot, keep});
    program.steps.push_back(std::move(step));
  }

  // Phase 2: single-operand expressions need at most one more reduction to
  // reach the exact output term (e.g. a transposition "ij->ji").
  if (alive.size() == 1) {
    if (alive[0].term != spec.output) {
      ProgramStep step;
      step.args = {alive[0].slot};
      step.arg_terms = {alive[0].term};
      step.result_term = spec.output;
      step.result_slot = next_slot++;
      program.est_flops += UnaryReductionCost(alive[0].term, program.extents);
      program.steps.push_back(std::move(step));
      program.result_slot = program.steps.back().result_slot;
    } else {
      program.result_slot = alive[0].slot;
    }
    return program;
  }

  // Phase 3: pairwise contraction along an optimized path.
  std::vector<Term> terms;
  terms.reserve(alive.size());
  for (const Operand& op : alive) terms.push_back(op.term);
  EINSQL_ASSIGN_OR_RETURN(
      ContractionPath path,
      FindPath(terms, spec.output, program.extents, algorithm));
  program.algorithm = path.algorithm;
  program.est_flops += path.est_flops;

  for (size_t s = 0; s < path.pairs.size(); ++s) {
    auto [i, j] = path.pairs[s];
    if (i > j) std::swap(i, j);
    const Operand lhs = alive[i];
    const Operand rhs = alive[j];
    alive.erase(alive.begin() + j);
    alive.erase(alive.begin() + i);
    Term result;
    if (s + 1 == path.pairs.size()) {
      result = spec.output;  // force exact output order on the last step
    } else {
      std::vector<Term> remaining;
      remaining.reserve(alive.size());
      for (const Operand& op : alive) remaining.push_back(op.term);
      result = IntermediateTerm(lhs.term, rhs.term, remaining, spec.output);
    }
    ProgramStep step;
    step.args = {lhs.slot, rhs.slot};
    step.arg_terms = {lhs.term, rhs.term};
    step.result_term = result;
    step.result_slot = next_slot++;
    alive.push_back({step.result_slot, result});
    program.steps.push_back(std::move(step));
  }
  program.result_slot = alive[0].slot;
  return program;
}

Result<ContractionProgram> BuildProgram(std::string_view format,
                                        const std::vector<Shape>& shapes,
                                        PathAlgorithm algorithm) {
  EINSQL_ASSIGN_OR_RETURN(EinsumSpec spec, ParseEinsumFormat(format));
  return BuildProgram(spec, shapes, algorithm);
}

}  // namespace einsql
