#ifndef EINSQL_CORE_PROGRAM_H_
#define EINSQL_CORE_PROGRAM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/format.h"
#include "core/path.h"

namespace einsql {

/// One step of a contraction program: a unary reduction (diagonal extraction
/// and/or axis summation of a single operand) or a pairwise contraction.
struct ProgramStep {
  /// Slot ids of the 1 or 2 operands consumed by this step.
  std::vector<int> args;
  /// Index terms of the operands, parallel to `args`.
  std::vector<Term> arg_terms;
  /// Index term of the produced intermediate (duplicate-free).
  Term result_term;
  /// Slot id assigned to the result.
  int result_slot = -1;
};

/// A backend-independent pairwise evaluation plan for an Einstein summation
/// (§3.3's decomposition): the SQL generator turns every step into one
/// common table expression, and the dense reference backend executes every
/// step with ReduceLabels/ContractPair. Slots 0..num_inputs-1 are the input
/// tensors; each step allocates the next slot.
struct ContractionProgram {
  /// The original parsed expression.
  EinsumSpec spec;
  /// Extent of every index character.
  Extents extents;
  /// Number of input tensors (slots 0..num_inputs-1).
  int num_inputs = 0;
  /// Evaluation steps in execution order.
  std::vector<ProgramStep> steps;
  /// Slot holding the final result. Equal to an input slot iff the
  /// expression is an identity (e.g. "ij->ij").
  int result_slot = 0;
  /// Estimated flop count including unary reductions.
  double est_flops = 0.0;
  /// The path algorithm used for the pairwise phase.
  PathAlgorithm algorithm = PathAlgorithm::kAuto;

  /// Term of the tensor held in `slot` (input term or step result term).
  const Term& TermOfSlot(int slot) const;
};

/// Builds a contraction program for `spec` over tensors with the given
/// shapes:
///  1. validates shapes against the spec and derives index extents,
///  2. pre-reduces every input whose term has repeated indices or indices
///     needed by no other operand and absent from the output,
///  3. runs contraction-path search over the reduced terms,
///  4. forces the final step to produce exactly `spec.output`.
Result<ContractionProgram> BuildProgram(const EinsumSpec& spec,
                                        const std::vector<Shape>& shapes,
                                        PathAlgorithm algorithm);

/// Convenience overload: parses the format string first.
Result<ContractionProgram> BuildProgram(std::string_view format,
                                        const std::vector<Shape>& shapes,
                                        PathAlgorithm algorithm);

}  // namespace einsql

#endif  // EINSQL_CORE_PROGRAM_H_
