#ifndef EINSQL_CORE_COST_H_
#define EINSQL_CORE_COST_H_

#include <cstdint>

#include "core/format.h"
#include <map>
#include <string>

namespace einsql {

/// Cost model for contraction-path search (§3.3). Costs are computed in
/// doubles because intermediate tensor sizes routinely overflow int64 for
/// naive paths over large tensor networks.

/// Number of elements of a (dense) tensor whose indices are the unique
/// characters of `term`.
double TermSize(const Term& term,
                const Extents& extents);

/// Classical einsum flop estimate for contracting two terms into `result`:
/// the product of the extents of the union of all participating indices
/// (each output element costs one multiply-add per summed combination).
double PairContractionCost(const Term& lhs, const Term& rhs,
                           const Term& result,
                           const Extents& extents);

/// Cost of a unary reduction (diagonal extraction and/or axis sums):
/// proportional to the input term size.
double UnaryReductionCost(const Term& term,
                          const Extents& extents);

}  // namespace einsql

#endif  // EINSQL_CORE_COST_H_
