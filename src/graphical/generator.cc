#include "graphical/generator.h"

#include <cmath>
#include <set>

namespace einsql::graphical {

namespace {

DenseTensor RandomPotentials(int rows, int columns, Rng* rng) {
  auto table = DenseTensor::Zeros({rows, columns}).value();
  for (int64_t i = 0; i < table.size(); ++i) {
    table[i] = std::exp(0.5 * rng->Normal());
  }
  return table;
}

}  // namespace

PairwiseModel BreastCancerLikeModel(uint64_t seed) {
  Rng rng(seed);
  PairwiseModel model;
  model.variables = {
      {"class", 2},       {"age", 6},        {"menopause", 3},
      {"tumor-size", 11}, {"inv-nodes", 7},  {"node-caps", 2},
      {"deg-malig", 3},   {"breast", 2},     {"breast-quad", 5},
      {"irradiat", 2}};
  // 21 edges, chosen to cover the paper's extreme shapes (2×3 and 11×7) and
  // to connect every variable to the class variable directly or indirectly.
  const std::pair<int, int> edges[21] = {
      {0, 2},  // class-menopause: 2×3
      {3, 4},  // tumor-size-inv-nodes: 11×7
      {0, 1}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 9},
      {1, 2}, {1, 3}, {2, 3}, {3, 5}, {3, 6}, {4, 5},
      {4, 6}, {5, 6}, {6, 9}, {7, 8}, {3, 8}, {1, 7}, {4, 9}};
  for (const auto& [u, v] : edges) {
    model.edges.push_back(
        {u, v,
         RandomPotentials(model.variables[u].cardinality,
                          model.variables[v].cardinality, &rng)});
  }
  return model;
}

PairwiseModel RandomPairwiseModel(int num_variables, int min_cardinality,
                                  int max_cardinality, int num_edges,
                                  Rng* rng) {
  PairwiseModel model;
  for (int v = 0; v < num_variables; ++v) {
    model.variables.push_back(
        {"x" + std::to_string(v),
         static_cast<int>(rng->UniformInt(min_cardinality, max_cardinality))});
  }
  std::set<std::pair<int, int>> chosen;
  // Spanning tree first so the model is connected.
  for (int v = 1; v < num_variables; ++v) {
    const int u = static_cast<int>(rng->UniformInt(0, v - 1));
    chosen.emplace(u, v);
  }
  while (static_cast<int>(chosen.size()) < num_edges) {
    int u = static_cast<int>(rng->UniformInt(0, num_variables - 1));
    int v = static_cast<int>(rng->UniformInt(0, num_variables - 1));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    chosen.emplace(u, v);
  }
  for (const auto& [u, v] : chosen) {
    model.edges.push_back(
        {u, v,
         RandomPotentials(model.variables[u].cardinality,
                          model.variables[v].cardinality, rng)});
  }
  return model;
}

InferenceQuery RandomQuery(const PairwiseModel& model, int query_variable,
                           int batch_size, Rng* rng) {
  InferenceQuery query;
  query.query_variable = query_variable;
  for (int v = 0; v < model.num_variables(); ++v) {
    if (v != query_variable) query.evidence_variables.push_back(v);
  }
  for (int b = 0; b < batch_size; ++b) {
    std::vector<int> row;
    for (int variable : query.evidence_variables) {
      row.push_back(static_cast<int>(
          rng->UniformInt(0, model.variables[variable].cardinality - 1)));
    }
    query.evidence_values.push_back(std::move(row));
  }
  return query;
}

}  // namespace einsql::graphical
