#include "graphical/model.h"

#include <cmath>

namespace einsql::graphical {

Status Validate(const PairwiseModel& model) {
  for (const Variable& variable : model.variables) {
    if (variable.cardinality < 1) {
      return Status::InvalidArgument("variable '", variable.name,
                                     "' has non-positive cardinality");
    }
  }
  for (size_t e = 0; e < model.edges.size(); ++e) {
    const EdgeFactor& edge = model.edges[e];
    if (edge.u < 0 || edge.u >= model.num_variables() || edge.v < 0 ||
        edge.v >= model.num_variables() || edge.u == edge.v) {
      return Status::InvalidArgument("edge ", e, " has invalid endpoints");
    }
    const Shape expected = {model.variables[edge.u].cardinality,
                            model.variables[edge.v].cardinality};
    if (edge.table.shape() != expected) {
      return Status::InvalidArgument(
          "edge ", e, " table shape ", ShapeToString(edge.table.shape()),
          " does not match ", ShapeToString(expected));
    }
    for (int64_t i = 0; i < edge.table.size(); ++i) {
      if (!(edge.table[i] >= 0.0)) {
        return Status::InvalidArgument("edge ", e,
                                       " has a negative potential");
      }
    }
  }
  return Status::OK();
}

Result<PairwiseModel> FromInteractionMatrix(
    const std::vector<Variable>& variables, const DenseTensor& q,
    double zero_tolerance) {
  int64_t total = 0;
  std::vector<int64_t> offset;
  for (const Variable& variable : variables) {
    offset.push_back(total);
    total += variable.cardinality;
  }
  if (q.shape() != Shape{total, total}) {
    return Status::InvalidArgument("Q must be ", total, "x", total,
                                   ", got ", ShapeToString(q.shape()));
  }
  // Symmetry check.
  for (int64_t i = 0; i < total; ++i) {
    for (int64_t j = 0; j < i; ++j) {
      if (std::abs(q.At({i, j}).value() - q.At({j, i}).value()) > 1e-12) {
        return Status::InvalidArgument("Q is not symmetric");
      }
    }
  }
  PairwiseModel model;
  model.variables = variables;
  const int n = model.num_variables();
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      // Extract the block and test it for non-zero entries.
      const int cu = variables[u].cardinality;
      const int cv = variables[v].cardinality;
      bool non_zero = false;
      EINSQL_ASSIGN_OR_RETURN(DenseTensor table,
                              DenseTensor::Zeros({cu, cv}));
      for (int a = 0; a < cu; ++a) {
        for (int b = 0; b < cv; ++b) {
          EINSQL_ASSIGN_OR_RETURN(double entry,
                                  q.At({offset[u] + a, offset[v] + b}));
          if (std::abs(entry) > zero_tolerance) non_zero = true;
          EINSQL_RETURN_IF_ERROR(table.Set({a, b}, std::exp(entry)));
        }
      }
      if (non_zero) {
        model.edges.push_back({u, v, std::move(table)});
      }
    }
  }
  EINSQL_RETURN_IF_ERROR(Validate(model));
  return model;
}

}  // namespace einsql::graphical
