#include "graphical/inference.h"

#include <set>

namespace einsql::graphical {

std::vector<const CooTensor*> InferenceNetwork::operands() const {
  std::vector<const CooTensor*> ptrs;
  ptrs.reserve(tensors.size());
  for (const CooTensor& tensor : tensors) ptrs.push_back(&tensor);
  return ptrs;
}

namespace {

Status ValidateQuery(const PairwiseModel& model, const InferenceQuery& query) {
  EINSQL_RETURN_IF_ERROR(Validate(model));
  const int n = model.num_variables();
  if (query.query_variable < 0 || query.query_variable >= n) {
    return Status::InvalidArgument("query variable out of range");
  }
  if (query.batch_size() == 0) {
    return Status::InvalidArgument("empty evidence batch");
  }
  std::set<int> seen;
  for (int variable : query.evidence_variables) {
    if (variable < 0 || variable >= n) {
      return Status::InvalidArgument("evidence variable out of range");
    }
    if (variable == query.query_variable) {
      return Status::InvalidArgument(
          "query variable cannot also be evidence");
    }
    if (!seen.insert(variable).second) {
      return Status::InvalidArgument("duplicate evidence variable ",
                                     variable);
    }
  }
  for (const std::vector<int>& row : query.evidence_values) {
    if (row.size() != query.evidence_variables.size()) {
      return Status::InvalidArgument(
          "evidence row arity does not match evidence variables");
    }
    for (size_t k = 0; k < row.size(); ++k) {
      const int cardinality =
          model.variables[query.evidence_variables[k]].cardinality;
      if (row[k] < 0 || row[k] >= cardinality) {
        return Status::InvalidArgument("evidence value out of range");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<InferenceNetwork> BuildInferenceNetwork(const PairwiseModel& model,
                                               const InferenceQuery& query) {
  EINSQL_RETURN_IF_ERROR(ValidateQuery(model, query));
  InferenceNetwork network;
  auto variable_label = [](int variable) {
    return static_cast<Label>(variable + 1);
  };
  const Label batch_label =
      static_cast<Label>(model.num_variables() + 1);

  // Edge potential matrices.
  for (const EdgeFactor& edge : model.edges) {
    network.spec.inputs.push_back(
        Term{variable_label(edge.u), variable_label(edge.v)});
    network.tensors.push_back(edge.table.ToCoo());
  }
  // One-hot evidence matrices of shape (B, |v|).
  const int batch = query.batch_size();
  for (size_t k = 0; k < query.evidence_variables.size(); ++k) {
    const int variable = query.evidence_variables[k];
    CooTensor one_hot(
        {batch, model.variables[variable].cardinality});
    for (int b = 0; b < batch; ++b) {
      EINSQL_RETURN_IF_ERROR(
          one_hot.Append({b, query.evidence_values[b][k]}, 1.0));
    }
    network.spec.inputs.push_back(
        Term{batch_label, variable_label(variable)});
    network.tensors.push_back(std::move(one_hot));
  }
  network.spec.output =
      Term{batch_label, variable_label(query.query_variable)};
  // The query variable must occur somewhere or the contraction is invalid.
  bool connected = false;
  for (const Term& term : network.spec.inputs) {
    if (term.find(variable_label(query.query_variable)) != Term::npos) {
      connected = true;
    }
  }
  if (!connected) {
    return Status::InvalidArgument(
        "query variable participates in no edge or evidence; its posterior "
        "is unconstrained");
  }
  // With no evidence variables the batch label would be absent; require
  // evidence (the paper's experiment always conditions on patient data).
  if (query.evidence_variables.empty()) {
    return Status::InvalidArgument("at least one evidence variable required");
  }
  return network;
}

namespace {

Result<DenseTensor> NormalizeRows(DenseTensor raw) {
  const int64_t rows = raw.shape()[0];
  const int64_t columns = raw.shape()[1];
  for (int64_t b = 0; b < rows; ++b) {
    double total = 0.0;
    for (int64_t x = 0; x < columns; ++x) total += raw[b * columns + x];
    if (total <= 0.0) {
      return Status::InvalidArgument("evidence of batch row ", b,
                                     " has zero probability");
    }
    for (int64_t x = 0; x < columns; ++x) raw[b * columns + x] /= total;
  }
  return raw;
}

}  // namespace

Result<DenseTensor> Posterior(EinsumEngine* engine,
                              const PairwiseModel& model,
                              const InferenceQuery& query,
                              const EinsumOptions& options) {
  EINSQL_ASSIGN_OR_RETURN(InferenceNetwork network,
                          BuildInferenceNetwork(model, query));
  EINSQL_ASSIGN_OR_RETURN(
      CooTensor raw,
      engine->EinsumSpecified(network.spec, network.operands(), options));
  EINSQL_ASSIGN_OR_RETURN(DenseTensor dense, DenseTensor::FromCoo(raw));
  return NormalizeRows(std::move(dense));
}

Result<std::vector<int>> MostLikelyState(EinsumEngine* engine,
                                         const PairwiseModel& model,
                                         const InferenceQuery& query,
                                         const EinsumOptions& options) {
  EINSQL_ASSIGN_OR_RETURN(DenseTensor posterior,
                          Posterior(engine, model, query, options));
  const int64_t batch = posterior.shape()[0];
  const int64_t states = posterior.shape()[1];
  std::vector<int> best(batch, 0);
  for (int64_t b = 0; b < batch; ++b) {
    double best_probability = posterior[b * states];
    for (int64_t x = 1; x < states; ++x) {
      if (posterior[b * states + x] > best_probability) {
        best_probability = posterior[b * states + x];
        best[b] = static_cast<int>(x);
      }
    }
  }
  return best;
}

Result<DenseTensor> PosteriorBruteForce(const PairwiseModel& model,
                                        const InferenceQuery& query) {
  EINSQL_RETURN_IF_ERROR(ValidateQuery(model, query));
  const int n = model.num_variables();
  const int batch = query.batch_size();
  const int query_cardinality =
      model.variables[query.query_variable].cardinality;
  EINSQL_ASSIGN_OR_RETURN(
      DenseTensor raw, DenseTensor::Zeros({batch, query_cardinality}));

  std::vector<int> assignment(n, 0);
  while (true) {
    double weight = 1.0;
    for (const EdgeFactor& edge : model.edges) {
      weight *= edge.table.At({assignment[edge.u], assignment[edge.v]})
                    .value();
    }
    if (weight != 0.0) {
      for (int b = 0; b < batch; ++b) {
        bool consistent = true;
        for (size_t k = 0;
             k < query.evidence_variables.size() && consistent; ++k) {
          consistent = assignment[query.evidence_variables[k]] ==
                       query.evidence_values[b][k];
        }
        if (consistent) {
          raw[b * query_cardinality + assignment[query.query_variable]] +=
              weight;
        }
      }
    }
    int d = n - 1;
    for (; d >= 0; --d) {
      if (++assignment[d] < model.variables[d].cardinality) break;
      assignment[d] = 0;
    }
    if (d < 0) break;
  }
  return NormalizeRows(std::move(raw));
}

}  // namespace einsql::graphical
