#ifndef EINSQL_GRAPHICAL_MODEL_H_
#define EINSQL_GRAPHICAL_MODEL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "tensor/dense.h"

namespace einsql::graphical {

/// A discrete random variable of the model.
struct Variable {
  std::string name;
  int cardinality = 2;
};

/// An edge of the pairwise model: a |u| × |v| table of positive potentials
/// (one matrix of the tensor network, Figure 5).
struct EdgeFactor {
  int u = 0;
  int v = 0;
  DenseTensor table;
};

/// A discrete pairwise Markov random field: the unnormalized probability of
/// a joint assignment x is the product of edge potentials ψ_uv[x_u, x_v].
struct PairwiseModel {
  std::vector<Variable> variables;
  std::vector<EdgeFactor> edges;

  int num_variables() const { return static_cast<int>(variables.size()); }
};

/// Validates variable indices, table shapes, and potential positivity.
Status Validate(const PairwiseModel& model);

/// Builds a model from a pairwise-interaction matrix Q (Figure 5): Q is a
/// symmetric D×D matrix, D = sum of cardinalities, carved into blocks by
/// variable; every non-zero block (u < v) becomes an edge whose potentials
/// are exp(Q_block), exactly the translation the paper applies to the
/// cgmodsel output.
Result<PairwiseModel> FromInteractionMatrix(
    const std::vector<Variable>& variables, const DenseTensor& q,
    double zero_tolerance = 0.0);

}  // namespace einsql::graphical

#endif  // EINSQL_GRAPHICAL_MODEL_H_
