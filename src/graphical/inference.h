#ifndef EINSQL_GRAPHICAL_INFERENCE_H_
#define EINSQL_GRAPHICAL_INFERENCE_H_

#include "backends/einsum_engine.h"
#include "graphical/model.h"

namespace einsql::graphical {

/// A batched conditional-probability query (§4.3): for each of B patients,
/// compute P(query_variable | evidence). Evidence values are embedded as
/// one-hot encoded matrices of shape (B, |v|), so the whole batch is one
/// Einstein summation.
struct InferenceQuery {
  int query_variable = 0;
  std::vector<int> evidence_variables;
  /// evidence_values[b][k] = observed state of evidence_variables[k] for
  /// patient b. All rows must have one entry per evidence variable.
  std::vector<std::vector<int>> evidence_values;

  int batch_size() const { return static_cast<int>(evidence_values.size()); }
};

/// The query's tensor network: one COO matrix per model edge plus one
/// one-hot evidence matrix per evidence variable; output term is
/// (batch, query).
struct InferenceNetwork {
  EinsumSpec spec;
  std::vector<CooTensor> tensors;

  std::vector<const CooTensor*> operands() const;
};

/// Builds the batched tensor network for `query` against `model`.
Result<InferenceNetwork> BuildInferenceNetwork(const PairwiseModel& model,
                                               const InferenceQuery& query);

/// Runs the query on an einsum engine and row-normalizes: result (B, |q|)
/// with rows summing to 1. Rows whose evidence has zero probability are an
/// InvalidArgument error.
Result<DenseTensor> Posterior(EinsumEngine* engine, const PairwiseModel& model,
                              const InferenceQuery& query,
                              const EinsumOptions& options = {});

/// Oracle: the same posterior by brute-force enumeration of all joint
/// assignments. Exponential; for validation only.
Result<DenseTensor> PosteriorBruteForce(const PairwiseModel& model,
                                        const InferenceQuery& query);

/// The most likely state of the query variable for every patient in the
/// batch — the paper's "what tumor size is most likely?" question —
/// computed as the argmax of the posterior. Ties resolve to the smallest
/// state index.
Result<std::vector<int>> MostLikelyState(EinsumEngine* engine,
                                         const PairwiseModel& model,
                                         const InferenceQuery& query,
                                         const EinsumOptions& options = {});

}  // namespace einsql::graphical

#endif  // EINSQL_GRAPHICAL_INFERENCE_H_
