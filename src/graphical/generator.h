#ifndef EINSQL_GRAPHICAL_GENERATOR_H_
#define EINSQL_GRAPHICAL_GENERATOR_H_

#include "common/rng.h"
#include "graphical/inference.h"
#include "graphical/model.h"

namespace einsql::graphical {

/// A synthetic stand-in for the breast-cancer model of §4.3: ten variables
/// with the UCI dataset's cardinalities (class=2, age=6, menopause=3,
/// tumor-size=11, inv-nodes=7, node-caps=2, deg-malig=3, breast=2,
/// breast-quad=5, irradiat=2) and 21 edges, giving edge matrices from
/// ℝ^{2×3} to ℝ^{11×7} exactly as the paper reports. Potentials are
/// exp(N(0, 0.5)) as a learned log-linear model would produce.
PairwiseModel BreastCancerLikeModel(uint64_t seed = 3);

/// Random pairwise model: `num_variables` variables with cardinalities in
/// [min_cardinality, max_cardinality] and `num_edges` distinct random edges
/// over a connected spanning tree.
PairwiseModel RandomPairwiseModel(int num_variables, int min_cardinality,
                                  int max_cardinality, int num_edges,
                                  Rng* rng);

/// A random batched query against `model`: all variables except the query
/// variable are evidence (the paper conditions on "all the patient's
/// data"), with values drawn uniformly.
InferenceQuery RandomQuery(const PairwiseModel& model, int query_variable,
                           int batch_size, Rng* rng);

}  // namespace einsql::graphical

#endif  // EINSQL_GRAPHICAL_GENERATOR_H_
