#include "tensor/sparse_contract.h"

#include <algorithm>
#include <complex>
#include <map>
#include <unordered_map>

namespace einsql {

namespace {

bool HasDuplicates(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end();
}

int FindLabel(const Labels& labels, int label) {
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) return static_cast<int>(i);
  }
  return -1;
}

// FNV-1a over a coordinate key.
size_t HashCoords(const std::vector<int64_t>& coords) {
  size_t h = 1469598103934665603ull;
  for (int64_t c : coords) {
    h ^= static_cast<size_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

struct CoordsHash {
  size_t operator()(const std::vector<int64_t>& coords) const {
    return HashCoords(coords);
  }
};

}  // namespace

template <typename V>
Result<Coo<V>> SparseReduceLabels(const Coo<V>& t, const Labels& labels,
                                  const Labels& out_labels) {
  const int r = t.rank();
  if (static_cast<int>(labels.size()) != r) {
    return Status::InvalidArgument("label count does not match tensor rank");
  }
  if (HasDuplicates(out_labels)) {
    return Status::InvalidArgument("output labels must be unique");
  }
  std::vector<int> out_axis;
  Shape out_shape;
  for (int label : out_labels) {
    const int axis = FindLabel(labels, label);
    if (axis < 0) {
      return Status::InvalidArgument("output label not present in input");
    }
    out_axis.push_back(axis);
    out_shape.push_back(t.shape()[axis]);
  }
  for (int d = 0; d < r; ++d) {
    if (t.shape()[d] != t.shape()[FindLabel(labels, labels[d])]) {
      return Status::InvalidArgument("repeated label with mismatched extents");
    }
  }
  std::unordered_map<std::vector<int64_t>, V, CoordsHash> accumulator;
  std::vector<int64_t> key(out_axis.size());
  for (int64_t k = 0; k < t.nnz(); ++k) {
    const int64_t* coords = t.raw_coords().data() + k * r;
    bool on_diagonal = true;
    for (int d = 0; d < r && on_diagonal; ++d) {
      on_diagonal = coords[FindLabel(labels, labels[d])] == coords[d];
    }
    if (!on_diagonal) continue;
    for (size_t a = 0; a < out_axis.size(); ++a) key[a] = coords[out_axis[a]];
    accumulator[key] += t.ValueAt(k);
  }
  Coo<V> out(out_shape);
  for (const auto& [coords, value] : accumulator) {
    EINSQL_RETURN_IF_ERROR(out.Append(coords, value));
  }
  out.Coalesce();
  return out;
}

template <typename V>
Result<Coo<V>> SparseContractPair(const Coo<V>& a, const Labels& a_labels,
                                  const Coo<V>& b, const Labels& b_labels,
                                  const Labels& out_labels) {
  if (static_cast<int>(a_labels.size()) != a.rank() ||
      static_cast<int>(b_labels.size()) != b.rank()) {
    return Status::InvalidArgument("label count does not match tensor rank");
  }
  if (HasDuplicates(a_labels) || HasDuplicates(b_labels)) {
    return Status::InvalidArgument(
        "SparseContractPair requires unique labels per input; apply "
        "SparseReduceLabels first");
  }
  if (HasDuplicates(out_labels)) {
    return Status::InvalidArgument("output labels must be unique");
  }
  // Label classification and extent checks.
  std::map<int, int64_t> extent;
  for (size_t d = 0; d < a_labels.size(); ++d) {
    extent[a_labels[d]] = a.shape()[d];
  }
  for (size_t d = 0; d < b_labels.size(); ++d) {
    auto it = extent.find(b_labels[d]);
    if (it != extent.end() && it->second != b.shape()[d]) {
      return Status::InvalidArgument("label extent mismatch between operands");
    }
    extent[b_labels[d]] = b.shape()[d];
  }
  for (int label : out_labels) {
    if (FindLabel(a_labels, label) < 0 && FindLabel(b_labels, label) < 0) {
      return Status::InvalidArgument("output label missing from both inputs");
    }
  }
  // Pre-reduce labels that appear in exactly one input and not in the
  // output (single-sided sums), as the dense kernel does.
  Labels a_keep, b_keep;
  for (int label : a_labels) {
    if (FindLabel(b_labels, label) >= 0 || FindLabel(out_labels, label) >= 0) {
      a_keep.push_back(label);
    }
  }
  for (int label : b_labels) {
    if (FindLabel(a_labels, label) >= 0 || FindLabel(out_labels, label) >= 0) {
      b_keep.push_back(label);
    }
  }
  if (a_keep.size() != a_labels.size()) {
    EINSQL_ASSIGN_OR_RETURN(Coo<V> ra, SparseReduceLabels(a, a_labels, a_keep));
    return SparseContractPair(ra, a_keep, b, b_labels, out_labels);
  }
  if (b_keep.size() != b_labels.size()) {
    EINSQL_ASSIGN_OR_RETURN(Coo<V> rb, SparseReduceLabels(b, b_labels, b_keep));
    return SparseContractPair(a, a_labels, rb, b_keep, out_labels);
  }
  // Join key: labels shared by both inputs (whether or not in the output).
  std::vector<int> a_key_axes, b_key_axes;
  for (size_t d = 0; d < a_labels.size(); ++d) {
    const int in_b = FindLabel(b_labels, a_labels[d]);
    if (in_b >= 0) {
      a_key_axes.push_back(static_cast<int>(d));
      b_key_axes.push_back(in_b);
    }
  }
  // Output coordinate sources: (from_a?, axis).
  struct OutputSource {
    bool from_a;
    int axis;
  };
  std::vector<OutputSource> sources;
  Shape out_shape;
  for (int label : out_labels) {
    const int in_a = FindLabel(a_labels, label);
    if (in_a >= 0) {
      sources.push_back({true, in_a});
    } else {
      sources.push_back({false, FindLabel(b_labels, label)});
    }
    out_shape.push_back(extent[label]);
  }

  // Build the hash table on the smaller operand... on b, as the SQL plans
  // do (the generated decomposed queries also build on the right input).
  const int rb = b.rank();
  std::unordered_map<std::vector<int64_t>, std::vector<int64_t>, CoordsHash>
      buckets;
  buckets.reserve(static_cast<size_t>(b.nnz()) * 2);
  std::vector<int64_t> key(b_key_axes.size());
  for (int64_t k = 0; k < b.nnz(); ++k) {
    const int64_t* coords = b.raw_coords().data() + k * rb;
    for (size_t d = 0; d < b_key_axes.size(); ++d) {
      key[d] = coords[b_key_axes[d]];
    }
    buckets[key].push_back(k);
  }
  // Probe with a; aggregate products by output coordinates.
  const int ra = a.rank();
  std::unordered_map<std::vector<int64_t>, V, CoordsHash> accumulator;
  std::vector<int64_t> out_coords(sources.size());
  key.assign(a_key_axes.size(), 0);
  for (int64_t ka = 0; ka < a.nnz(); ++ka) {
    const int64_t* a_coords = a.raw_coords().data() + ka * ra;
    for (size_t d = 0; d < a_key_axes.size(); ++d) {
      key[d] = a_coords[a_key_axes[d]];
    }
    auto it = buckets.find(key);
    if (it == buckets.end()) continue;
    const V a_value = a.ValueAt(ka);
    for (int64_t kb : it->second) {
      const int64_t* b_coords = b.raw_coords().data() + kb * rb;
      for (size_t s = 0; s < sources.size(); ++s) {
        out_coords[s] =
            sources[s].from_a ? a_coords[sources[s].axis]
                              : b_coords[sources[s].axis];
      }
      accumulator[out_coords] += a_value * b.ValueAt(kb);
    }
  }
  Coo<V> out(out_shape);
  for (const auto& [coords, value] : accumulator) {
    EINSQL_RETURN_IF_ERROR(out.Append(coords, value));
  }
  out.Coalesce();
  return out;
}

template Result<Coo<double>> SparseReduceLabels(const Coo<double>&,
                                                const Labels&, const Labels&);
template Result<Coo<std::complex<double>>> SparseReduceLabels(
    const Coo<std::complex<double>>&, const Labels&, const Labels&);
template Result<Coo<double>> SparseContractPair(const Coo<double>&,
                                                const Labels&,
                                                const Coo<double>&,
                                                const Labels&, const Labels&);
template Result<Coo<std::complex<double>>> SparseContractPair(
    const Coo<std::complex<double>>&, const Labels&,
    const Coo<std::complex<double>>&, const Labels&, const Labels&);

}  // namespace einsql
