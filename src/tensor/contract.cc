#include "tensor/contract.h"

#include <algorithm>
#include <complex>
#include <map>

#include "tensor/gemm.h"

namespace einsql {

namespace {

bool HasDuplicates(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end();
}

int FindLabel(const Labels& labels, int label) {
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

template <typename V>
Result<Dense<V>> Transpose(const Dense<V>& t, const std::vector<int>& perm) {
  const int r = t.rank();
  if (static_cast<int>(perm.size()) != r) {
    return Status::InvalidArgument("permutation rank mismatch");
  }
  std::vector<bool> seen(r, false);
  for (int p : perm) {
    if (p < 0 || p >= r || seen[p]) {
      return Status::InvalidArgument("invalid permutation");
    }
    seen[p] = true;
  }
  Shape out_shape(r);
  for (int d = 0; d < r; ++d) out_shape[d] = t.shape()[perm[d]];
  EINSQL_ASSIGN_OR_RETURN(Dense<V> out, Dense<V>::Zeros(out_shape));
  // Walk the output in row-major order, computing the matching input offset
  // incrementally (odometer pattern).
  std::vector<int64_t> in_strides(r);
  for (int d = 0; d < r; ++d) in_strides[d] = t.strides()[perm[d]];
  std::vector<int64_t> coords(r, 0);
  int64_t in_flat = 0;
  const int64_t total = out.size();
  for (int64_t out_flat = 0; out_flat < total; ++out_flat) {
    out[out_flat] = t[in_flat];
    for (int d = r - 1; d >= 0; --d) {
      if (++coords[d] < out_shape[d]) {
        in_flat += in_strides[d];
        break;
      }
      in_flat -= in_strides[d] * (out_shape[d] - 1);
      coords[d] = 0;
    }
  }
  return out;
}

template <typename V>
Result<Dense<V>> ReduceLabels(const Dense<V>& t, const Labels& labels,
                              const Labels& out_labels) {
  const int r = t.rank();
  if (static_cast<int>(labels.size()) != r) {
    return Status::InvalidArgument("label count does not match tensor rank");
  }
  if (HasDuplicates(out_labels)) {
    return Status::InvalidArgument("output labels must be unique");
  }
  // Determine output shape and the first input axis of each output label.
  Shape out_shape;
  std::vector<int> out_axis;  // input axis providing each output label
  for (int label : out_labels) {
    int axis = FindLabel(labels, label);
    if (axis < 0) {
      return Status::InvalidArgument("output label not present in input");
    }
    out_axis.push_back(axis);
    out_shape.push_back(t.shape()[axis]);
  }
  // Extent consistency for repeated labels.
  for (int d = 0; d < r; ++d) {
    int first = FindLabel(labels, labels[d]);
    if (t.shape()[d] != t.shape()[first]) {
      return Status::InvalidArgument("repeated label with mismatched extents");
    }
  }
  EINSQL_ASSIGN_OR_RETURN(Dense<V> out, Dense<V>::Zeros(out_shape));
  const auto& out_strides = out.strides();
  std::vector<int64_t> coords(r, 0);
  const int64_t total = t.size();
  for (int64_t flat = 0; flat < total; ++flat) {
    // Keep only diagonal elements of repeated labels.
    bool on_diagonal = true;
    for (int d = 0; d < r && on_diagonal; ++d) {
      int first = FindLabel(labels, labels[d]);
      if (first != d && coords[first] != coords[d]) on_diagonal = false;
    }
    if (on_diagonal) {
      int64_t out_flat = 0;
      for (size_t k = 0; k < out_axis.size(); ++k) {
        out_flat += coords[out_axis[k]] * out_strides[k];
      }
      out[out_flat] += t[flat];
    }
    for (int d = r - 1; d >= 0; --d) {
      if (++coords[d] < t.shape()[d]) break;
      coords[d] = 0;
    }
  }
  return out;
}

template <typename V>
Result<Dense<V>> ContractPair(const Dense<V>& a, const Labels& a_labels,
                              const Dense<V>& b, const Labels& b_labels,
                              const Labels& out_labels) {
  if (static_cast<int>(a_labels.size()) != a.rank() ||
      static_cast<int>(b_labels.size()) != b.rank()) {
    return Status::InvalidArgument("label count does not match tensor rank");
  }
  if (HasDuplicates(a_labels) || HasDuplicates(b_labels)) {
    return Status::InvalidArgument(
        "ContractPair requires unique labels per input; apply ReduceLabels "
        "first");
  }
  if (HasDuplicates(out_labels)) {
    return Status::InvalidArgument("output labels must be unique");
  }
  // Extent agreement for shared labels.
  std::map<int, int64_t> extent;
  for (size_t d = 0; d < a_labels.size(); ++d) {
    extent[a_labels[d]] = a.shape()[d];
  }
  for (size_t d = 0; d < b_labels.size(); ++d) {
    auto it = extent.find(b_labels[d]);
    if (it != extent.end() && it->second != b.shape()[d]) {
      return Status::InvalidArgument("label extent mismatch between operands");
    }
    extent[b_labels[d]] = b.shape()[d];
  }
  // Classify shared labels: batch dimensions stay in the output, contracted
  // dimensions are summed over.
  Labels batch, contracted, a_free, b_free;
  for (int label : a_labels) {
    if (FindLabel(b_labels, label) < 0) continue;
    if (FindLabel(out_labels, label) >= 0) {
      batch.push_back(label);
    } else {
      contracted.push_back(label);
    }
  }
  for (int label : out_labels) {
    if (FindLabel(a_labels, label) < 0 && FindLabel(b_labels, label) < 0) {
      return Status::InvalidArgument("output label missing from both inputs");
    }
  }
  // Pre-reduce labels that appear in exactly one input and not in the output
  // (they can be summed before the pairwise product).
  Labels a_keep, b_keep;
  bool a_reduced = false, b_reduced = false;
  for (int label : a_labels) {
    if (FindLabel(b_labels, label) < 0 && FindLabel(out_labels, label) < 0) {
      a_reduced = true;
    } else {
      a_keep.push_back(label);
    }
  }
  for (int label : b_labels) {
    if (FindLabel(a_labels, label) < 0 && FindLabel(out_labels, label) < 0) {
      b_reduced = true;
    } else {
      b_keep.push_back(label);
    }
  }
  if (a_reduced) {
    EINSQL_ASSIGN_OR_RETURN(Dense<V> ra, ReduceLabels(a, a_labels, a_keep));
    return ContractPair(ra, a_keep, b, b_labels, out_labels);
  }
  if (b_reduced) {
    EINSQL_ASSIGN_OR_RETURN(Dense<V> rb, ReduceLabels(b, b_labels, b_keep));
    return ContractPair(a, a_labels, rb, b_keep, out_labels);
  }
  // Free labels: unique to one operand (single-sided sums are gone by now).
  for (int label : a_labels) {
    if (FindLabel(b_labels, label) < 0) a_free.push_back(label);
  }
  for (int label : b_labels) {
    if (FindLabel(a_labels, label) < 0) b_free.push_back(label);
  }

  auto perm_for = [](const Labels& from, const Labels& order) {
    std::vector<int> perm;
    for (int label : order) perm.push_back(FindLabel(from, label));
    return perm;
  };
  // a -> [batch, a_free, contracted]; b -> [batch, contracted, b_free].
  Labels a_order = batch;
  a_order.insert(a_order.end(), a_free.begin(), a_free.end());
  a_order.insert(a_order.end(), contracted.begin(), contracted.end());
  Labels b_order = batch;
  b_order.insert(b_order.end(), contracted.begin(), contracted.end());
  b_order.insert(b_order.end(), b_free.begin(), b_free.end());
  EINSQL_ASSIGN_OR_RETURN(Dense<V> ta, Transpose(a, perm_for(a_labels, a_order)));
  EINSQL_ASSIGN_OR_RETURN(Dense<V> tb, Transpose(b, perm_for(b_labels, b_order)));

  auto extent_product = [&](const Labels& labels) {
    int64_t p = 1;
    for (int label : labels) p *= extent[label];
    return p;
  };
  const int64_t nbatch = extent_product(batch);
  const int64_t m = extent_product(a_free);
  const int64_t k = extent_product(contracted);
  const int64_t n = extent_product(b_free);

  // Batched GEMM: C[bt,i,j] = sum_k A[bt,i,k] * B[bt,k,j], one
  // cache-blocked kernel call per batch slice (gemm.h).
  std::vector<V> c(static_cast<size_t>(nbatch * m * n), V(0));
  const V* pa = ta.data().data();
  const V* pb = tb.data().data();
  for (int64_t bt = 0; bt < nbatch; ++bt) {
    Gemm(pa + bt * m * k, pb + bt * k * n, c.data() + bt * m * n, m, k, n);
  }
  // Current layout: [batch, a_free, b_free]; permute to out_labels.
  Labels c_labels = batch;
  c_labels.insert(c_labels.end(), a_free.begin(), a_free.end());
  c_labels.insert(c_labels.end(), b_free.begin(), b_free.end());
  Shape c_shape;
  for (int label : c_labels) c_shape.push_back(extent[label]);
  EINSQL_ASSIGN_OR_RETURN(Dense<V> dc, Dense<V>::FromData(c_shape, std::move(c)));
  if (c_labels == out_labels) return dc;
  return Transpose(dc, perm_for(c_labels, out_labels));
}

// Explicit instantiations for the two supported value types.
template Result<Dense<double>> Transpose(const Dense<double>&,
                                         const std::vector<int>&);
template Result<Dense<std::complex<double>>> Transpose(
    const Dense<std::complex<double>>&, const std::vector<int>&);
template Result<Dense<double>> ReduceLabels(const Dense<double>&,
                                            const Labels&, const Labels&);
template Result<Dense<std::complex<double>>> ReduceLabels(
    const Dense<std::complex<double>>&, const Labels&, const Labels&);
template Result<Dense<double>> ContractPair(const Dense<double>&,
                                            const Labels&,
                                            const Dense<double>&,
                                            const Labels&, const Labels&);
template Result<Dense<std::complex<double>>> ContractPair(
    const Dense<std::complex<double>>&, const Labels&,
    const Dense<std::complex<double>>&, const Labels&, const Labels&);

}  // namespace einsql
