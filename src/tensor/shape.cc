#include "tensor/shape.h"

#include <limits>

#include "common/str_util.h"

namespace einsql {

Result<int64_t> NumElements(const Shape& shape) {
  int64_t total = 1;
  for (int64_t extent : shape) {
    if (extent < 0) {
      return Status::InvalidArgument("negative axis extent in shape ",
                                     ShapeToString(shape));
    }
    if (extent == 0) {
      // A degenerate axis yields an empty tensor; keep scanning so negative
      // extents elsewhere in the shape are still rejected.
      total = 0;
      continue;
    }
    if (total > std::numeric_limits<int64_t>::max() / extent) {
      return Status::OutOfRange("shape ", ShapeToString(shape),
                                " overflows int64 element count");
    }
    total *= extent;
  }
  return total;
}

std::vector<int64_t> RowMajorStrides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (int i = static_cast<int>(shape.size()) - 2; i >= 0; --i) {
    strides[i] = strides[i + 1] * shape[i + 1];
  }
  return strides;
}

std::string ShapeToString(const Shape& shape) {
  std::string out = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(shape[i]);
  }
  out += "]";
  return out;
}

bool CoordsInBounds(const Shape& shape, const std::vector<int64_t>& coords) {
  if (coords.size() != shape.size()) return false;
  for (size_t i = 0; i < shape.size(); ++i) {
    if (coords[i] < 0 || coords[i] >= shape[i]) return false;
  }
  return true;
}

}  // namespace einsql
