#ifndef EINSQL_TENSOR_DENSE_H_
#define EINSQL_TENSOR_DENSE_H_

#include <complex>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "tensor/coo.h"
#include "tensor/shape.h"

namespace einsql {

/// Dense row-major tensor. This is the in-memory format of the dense
/// reference backend (the stand-in for opt_einsum's NumPy backend).
template <typename V>
class Dense {
 public:
  using value_type = V;

  /// Creates a zero-filled tensor; fails on overflow / bad extents.
  static Result<Dense<V>> Zeros(Shape shape) {
    EINSQL_ASSIGN_OR_RETURN(int64_t total, NumElements(shape));
    Dense<V> t;
    t.shape_ = std::move(shape);
    t.strides_ = RowMajorStrides(t.shape_);
    t.data_.assign(static_cast<size_t>(total), V(0));
    return t;
  }

  /// Creates a tensor from explicit row-major data.
  static Result<Dense<V>> FromData(Shape shape, std::vector<V> data) {
    EINSQL_ASSIGN_OR_RETURN(int64_t total, NumElements(shape));
    if (static_cast<int64_t>(data.size()) != total) {
      return Status::InvalidArgument("data size ", data.size(),
                                     " does not match shape ",
                                     ShapeToString(shape));
    }
    Dense<V> t;
    t.shape_ = std::move(shape);
    t.strides_ = RowMajorStrides(t.shape_);
    t.data_ = std::move(data);
    return t;
  }

  /// Densifies a COO tensor (duplicates accumulate by addition).
  static Result<Dense<V>> FromCoo(const Coo<V>& coo) {
    EINSQL_ASSIGN_OR_RETURN(Dense<V> t, Zeros(coo.shape()));
    const int r = coo.rank();
    for (int64_t k = 0; k < coo.nnz(); ++k) {
      int64_t flat = 0;
      for (int d = 0; d < r; ++d) {
        flat += coo.raw_coords()[k * r + d] * t.strides_[d];
      }
      t.data_[flat] += coo.ValueAt(k);
    }
    return t;
  }

  /// Sparsifies to COO, dropping values with magnitude <= epsilon.
  Coo<V> ToCoo(double epsilon = 0.0) const {
    Coo<V> coo(shape_);
    std::vector<int64_t> coords(shape_.size(), 0);
    for (int64_t flat = 0; flat < static_cast<int64_t>(data_.size()); ++flat) {
      if (internal::AbsValue(data_[flat]) > epsilon) {
        int64_t rem = flat;
        for (size_t d = 0; d < shape_.size(); ++d) {
          coords[d] = rem / strides_[d];
          rem %= strides_[d];
        }
        (void)coo.Append(coords, data_[flat]);
      }
    }
    return coo;
  }

  const Shape& shape() const { return shape_; }
  const std::vector<int64_t>& strides() const { return strides_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  const std::vector<V>& data() const { return data_; }
  std::vector<V>& data() { return data_; }

  /// Unchecked flat accessors.
  V& operator[](int64_t flat) { return data_[flat]; }
  const V& operator[](int64_t flat) const { return data_[flat]; }

  /// Flat index of a coordinate tuple (unchecked).
  int64_t FlatIndex(const std::vector<int64_t>& coords) const {
    int64_t flat = 0;
    for (size_t d = 0; d < coords.size(); ++d) flat += coords[d] * strides_[d];
    return flat;
  }

  /// Bounds-checked element access.
  Result<V> At(const std::vector<int64_t>& coords) const {
    if (!CoordsInBounds(shape_, coords)) {
      return Status::InvalidArgument("coordinates out of bounds for shape ",
                                     ShapeToString(shape_));
    }
    return data_[FlatIndex(coords)];
  }

  /// Bounds-checked element assignment.
  Status Set(const std::vector<int64_t>& coords, V value) {
    if (!CoordsInBounds(shape_, coords)) {
      return Status::InvalidArgument("coordinates out of bounds for shape ",
                                     ShapeToString(shape_));
    }
    data_[FlatIndex(coords)] = value;
    return Status::OK();
  }

 private:
  Shape shape_;
  std::vector<int64_t> strides_;
  std::vector<V> data_;
};

using DenseTensor = Dense<double>;
using ComplexDenseTensor = Dense<std::complex<double>>;

/// True iff shapes match and all elements agree within `tolerance`.
template <typename V>
bool AllClose(const Dense<V>& a, const Dense<V>& b, double tolerance = 1e-9) {
  if (a.shape() != b.shape()) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (internal::AbsValue(a[i] - b[i]) > tolerance) return false;
  }
  return true;
}

}  // namespace einsql

#endif  // EINSQL_TENSOR_DENSE_H_
