#ifndef EINSQL_TENSOR_CONTRACT_H_
#define EINSQL_TENSOR_CONTRACT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "tensor/dense.h"

namespace einsql {

/// Axis labels for contraction kernels. Labels are opaque integers; the
/// einsum core maps format-string index characters onto them.
using Labels = std::vector<int>;

/// Permutes the axes of `t`: axis `d` of the result is axis `perm[d]` of the
/// input. `perm` must be a permutation of [0, rank).
template <typename V>
Result<Dense<V>> Transpose(const Dense<V>& t, const std::vector<int>& perm);

/// Reduces a single tensor to the requested output labels:
///  * repeated labels in `labels` are collapsed to their diagonal,
///  * labels absent from `out_labels` are summed away.
/// `out_labels` must be duplicate-free and a subset of `labels`.
template <typename V>
Result<Dense<V>> ReduceLabels(const Dense<V>& t, const Labels& labels,
                              const Labels& out_labels);

/// Contracts a pair of dense tensors, the workhorse of the dense reference
/// backend: shared labels absent from `out_labels` are summed over; shared
/// labels present in `out_labels` act as batch dimensions. Labels must be
/// unique within each input (use ReduceLabels first otherwise); extents of
/// equal labels must match. Internally the operands are transposed to
/// [batch, free, contracted] layout and multiplied as batched matrices,
/// mirroring how NumPy's einsum executes a pairwise contraction.
template <typename V>
Result<Dense<V>> ContractPair(const Dense<V>& a, const Labels& a_labels,
                              const Dense<V>& b, const Labels& b_labels,
                              const Labels& out_labels);

}  // namespace einsql

#endif  // EINSQL_TENSOR_CONTRACT_H_
