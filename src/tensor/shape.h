#ifndef EINSQL_TENSOR_SHAPE_H_
#define EINSQL_TENSOR_SHAPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace einsql {

/// A tensor shape: the extent of each axis. A scalar has an empty shape.
using Shape = std::vector<int64_t>;

/// Number of elements in a dense tensor of this shape (1 for a scalar, 0
/// when any axis is degenerate). Returns an error on overflow or on a
/// negative extent.
Result<int64_t> NumElements(const Shape& shape);

/// Row-major strides for `shape` (empty for a scalar).
std::vector<int64_t> RowMajorStrides(const Shape& shape);

/// Renders a shape as "[2, 3, 4]".
std::string ShapeToString(const Shape& shape);

/// True iff every coordinate is within [0, extent) of its axis and the
/// number of coordinates matches the rank.
bool CoordsInBounds(const Shape& shape, const std::vector<int64_t>& coords);

}  // namespace einsql

#endif  // EINSQL_TENSOR_SHAPE_H_
