#ifndef EINSQL_TENSOR_SPARSE_CONTRACT_H_
#define EINSQL_TENSOR_SPARSE_CONTRACT_H_

#include "common/result.h"
#include "tensor/contract.h"

namespace einsql {

/// Sparse pairwise contraction kernels operating directly on COO storage —
/// the in-memory analog of what the generated SQL makes a DBMS do: a hash
/// join on the shared indices followed by hash aggregation on the output
/// indices. This is the contraction strategy of tensor-based triplestores
/// (Tentris, cited in §4.1/§6), where inputs are hypersparse and a dense
/// kernel would be infeasible.

/// Reduces a single sparse tensor to `out_labels`: repeated labels keep
/// only diagonal entries, labels absent from `out_labels` are summed away.
/// Same contract as the dense ReduceLabels.
template <typename V>
Result<Coo<V>> SparseReduceLabels(const Coo<V>& t, const Labels& labels,
                                  const Labels& out_labels);

/// Contracts two sparse tensors: hash-join on the shared labels, then
/// aggregate products by output coordinate. Labels must be unique within
/// each input; extents of shared labels must agree; every output label must
/// come from some input (same contract as the dense ContractPair).
template <typename V>
Result<Coo<V>> SparseContractPair(const Coo<V>& a, const Labels& a_labels,
                                  const Coo<V>& b, const Labels& b_labels,
                                  const Labels& out_labels);

}  // namespace einsql

#endif  // EINSQL_TENSOR_SPARSE_CONTRACT_H_
