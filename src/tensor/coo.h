#ifndef EINSQL_TENSOR_COO_H_
#define EINSQL_TENSOR_COO_H_

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/result.h"
#include "tensor/shape.h"

namespace einsql {

namespace internal {
inline double AbsValue(double v) { return std::abs(v); }
inline double AbsValue(const std::complex<double>& v) { return std::abs(v); }
}  // namespace internal

/// Sparse tensor in coordinate (COO) format, the portable schema of §3.1:
/// each stored entry is a coordinate tuple plus a value, exactly mirroring a
/// SQL relation `T(i0 INT, ..., ik INT, val DOUBLE)`.
///
/// Entries are kept in insertion order until Coalesce() is called, which
/// sorts them lexicographically by coordinates, merges duplicates by
/// addition, and drops explicit zeros.  A scalar is a rank-0 tensor with at
/// most one entry (an empty coordinate tuple).
template <typename V>
class Coo {
 public:
  /// Value type (double or std::complex<double>).
  using value_type = V;

  /// Creates an empty tensor of the given shape.
  explicit Coo(Shape shape = {}) : shape_(std::move(shape)) {}

  /// The tensor shape; rank == shape().size().
  const Shape& shape() const { return shape_; }

  /// The tensor rank (number of axes).
  int rank() const { return static_cast<int>(shape_.size()); }

  /// Number of stored entries (may include duplicates before Coalesce()).
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  /// Appends an entry. Returns InvalidArgument if the coordinates are out of
  /// bounds or of the wrong rank.
  Status Append(const std::vector<int64_t>& coords, V value) {
    if (!CoordsInBounds(shape_, coords)) {
      return Status::InvalidArgument("coordinates out of bounds for shape ",
                                     ShapeToString(shape_));
    }
    coords_.insert(coords_.end(), coords.begin(), coords.end());
    values_.push_back(value);
    return Status::OK();
  }

  /// Coordinates of the `n`-th stored entry.
  std::vector<int64_t> CoordsAt(int64_t n) const {
    const int r = rank();
    return std::vector<int64_t>(coords_.begin() + n * r,
                                coords_.begin() + (n + 1) * r);
  }

  /// Value of the `n`-th stored entry.
  V ValueAt(int64_t n) const { return values_[n]; }

  /// Raw flattened coordinate storage (nnz * rank entries, row-major).
  const std::vector<int64_t>& raw_coords() const { return coords_; }

  /// Raw value storage.
  const std::vector<V>& raw_values() const { return values_; }

  /// Sorts entries lexicographically, merges duplicate coordinates by
  /// addition, and removes entries whose magnitude is below `epsilon`.
  void Coalesce(double epsilon = 0.0) {
    const int r = rank();
    const int64_t n = nnz();
    std::vector<int64_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      for (int d = 0; d < r; ++d) {
        int64_t ca = coords_[a * r + d], cb = coords_[b * r + d];
        if (ca != cb) return ca < cb;
      }
      return false;
    });
    std::vector<int64_t> new_coords;
    std::vector<V> new_values;
    new_coords.reserve(coords_.size());
    new_values.reserve(values_.size());
    for (int64_t k = 0; k < n; ++k) {
      const int64_t src = order[k];
      const bool same_as_prev =
          !new_values.empty() &&
          std::equal(coords_.begin() + src * r, coords_.begin() + (src + 1) * r,
                     new_coords.end() - r);
      if (same_as_prev) {
        new_values.back() += values_[src];
      } else {
        new_coords.insert(new_coords.end(), coords_.begin() + src * r,
                          coords_.begin() + (src + 1) * r);
        new_values.push_back(values_[src]);
      }
    }
    // Drop (near-)zeros.
    std::vector<int64_t> final_coords;
    std::vector<V> final_values;
    for (size_t k = 0; k < new_values.size(); ++k) {
      if (internal::AbsValue(new_values[k]) > epsilon) {
        final_coords.insert(final_coords.end(), new_coords.begin() + k * r,
                            new_coords.begin() + (k + 1) * r);
        final_values.push_back(new_values[k]);
      }
    }
    coords_ = std::move(final_coords);
    values_ = std::move(final_values);
  }

  /// Looks up the value at `coords` by linear scan; 0 if absent.
  /// Intended for tests and small tensors; O(nnz).
  Result<V> At(const std::vector<int64_t>& coords) const {
    if (!CoordsInBounds(shape_, coords)) {
      return Status::InvalidArgument("coordinates out of bounds for shape ",
                                     ShapeToString(shape_));
    }
    const int r = rank();
    V sum = V(0);
    for (int64_t k = 0; k < nnz(); ++k) {
      if (std::equal(coords.begin(), coords.end(), coords_.begin() + k * r)) {
        sum += values_[k];
      }
    }
    return sum;
  }

  /// Fraction of non-zero entries relative to the dense element count.
  /// A tensor with a degenerate (size-0) axis has density 0.
  Result<double> Density() const {
    EINSQL_ASSIGN_OR_RETURN(int64_t total, NumElements(shape_));
    if (total == 0) return 0.0;
    return static_cast<double>(nnz()) / static_cast<double>(total);
  }

 private:
  Shape shape_;
  std::vector<int64_t> coords_;  // flattened, nnz * rank
  std::vector<V> values_;
};

/// Real-valued COO tensor, the workhorse of the SQL mapping.
using CooTensor = Coo<double>;
/// Complex-valued COO tensor used by the quantum-circuit use case (§4.4).
using ComplexCooTensor = Coo<std::complex<double>>;

/// True iff both tensors have the same shape and every coordinate's
/// (coalesced) value matches within `tolerance`.
template <typename V>
bool AllClose(const Coo<V>& a, const Coo<V>& b, double tolerance = 1e-9) {
  if (a.shape() != b.shape()) return false;
  Coo<V> ca = a, cb = b;
  ca.Coalesce();
  cb.Coalesce();
  // Merge-compare the two sorted entry lists, treating absences as zero.
  int64_t ia = 0, ib = 0;
  const int r = ca.rank();
  auto cmp = [&](int64_t ka, int64_t kb) {
    for (int d = 0; d < r; ++d) {
      int64_t va = ca.raw_coords()[ka * r + d];
      int64_t vb = cb.raw_coords()[kb * r + d];
      if (va != vb) return va < vb ? -1 : 1;
    }
    return 0;
  };
  while (ia < ca.nnz() && ib < cb.nnz()) {
    int c = cmp(ia, ib);
    if (c == 0) {
      if (internal::AbsValue(ca.ValueAt(ia) - cb.ValueAt(ib)) > tolerance) {
        return false;
      }
      ++ia, ++ib;
    } else if (c < 0) {
      if (internal::AbsValue(ca.ValueAt(ia)) > tolerance) return false;
      ++ia;
    } else {
      if (internal::AbsValue(cb.ValueAt(ib)) > tolerance) return false;
      ++ib;
    }
  }
  for (; ia < ca.nnz(); ++ia) {
    if (internal::AbsValue(ca.ValueAt(ia)) > tolerance) return false;
  }
  for (; ib < cb.nnz(); ++ib) {
    if (internal::AbsValue(cb.ValueAt(ib)) > tolerance) return false;
  }
  return true;
}

}  // namespace einsql

#endif  // EINSQL_TENSOR_COO_H_
