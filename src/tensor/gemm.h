#ifndef EINSQL_TENSOR_GEMM_H_
#define EINSQL_TENSOR_GEMM_H_

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/simd.h"

namespace einsql {

/// Dense matrix-multiply kernels behind the pairwise contraction step
/// (ContractPair): C[i,j] += sum_k A[i,k] * B[k,j] over row-major operands.
///
/// `GemmNaive` is the pre-blocking reference implementation — the exact
/// loop nest ContractPair used before the blocked kernel existed,
/// including its skip of zero A entries. It stays here for the `kernels`
/// benchmark group (blocked-vs-naive speedup) and as a second
/// implementation for differential tests.
///
/// `Gemm` is the production kernel: cache-blocked over k panels (KC rows
/// of B at a time) with MR x NR register tiles and a packed copy of the A
/// tile, so the inner loop reads two contiguous streams and touches each
/// C element once per k panel instead of once per k step. For every
/// output element the terms still accumulate into a single running value
/// in ascending-k order — the same order as a zero-skip-free naive loop —
/// so the blocked result is bit-identical to naive accumulation whenever
/// no A entry is exactly zero. (GemmNaive's zero-skip can differ from
/// both in the last bit of signed zeros, or when B holds non-finite
/// values: 0 * inf is NaN when computed but nothing when skipped. The
/// production kernel never skips, which keeps its results independent of
/// A's sparsity pattern.)
///
/// docs/kernels.md documents the tile sizes and the SIMD policy. The
/// double micro-kernel uses the portable 4-lane vectors of common/simd.h
/// when `simd::Enabled()`; the scalar twin runs the identical
/// per-element operations in the identical order, so MINIDB_NO_SIMD=1
/// changes no bits of any GEMM result.

namespace gemm_internal {

/// Register-tile geometry. MR x NR accumulators live in registers across
/// the whole k panel; NR = 4 doubles is one portable Vec4d.
inline constexpr int64_t kMr = 4;
inline constexpr int64_t kNr = 4;
/// k-panel depth: one panel of packed A (kMr * kKc values) plus the B
/// rows it touches stay L1/L2-resident. 256 doubles * 4 rows = 8 KiB of
/// packed A per tile.
inline constexpr int64_t kKc = 256;

/// Scalar MR x NR micro-kernel over one packed A tile and the matching B
/// panel. `apack` holds kc steps of kMr A values each (k-major); C is
/// loaded into local accumulators once, updated for every k step in
/// ascending order, and stored back once.
template <typename V>
inline void MicroTileScalar(const V* apack, const V* b, V* c, int64_t kc,
                            int64_t n) {
  V acc[kMr][kNr];
  for (int64_t r = 0; r < kMr; ++r) {
    for (int64_t s = 0; s < kNr; ++s) acc[r][s] = c[r * n + s];
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const V* brow = b + kk * n;
    for (int64_t r = 0; r < kMr; ++r) {
      const V av = apack[kk * kMr + r];
      for (int64_t s = 0; s < kNr; ++s) acc[r][s] += av * brow[s];
    }
  }
  for (int64_t r = 0; r < kMr; ++r) {
    for (int64_t s = 0; s < kNr; ++s) c[r * n + s] = acc[r][s];
  }
}

#if defined(EINSQL_HAVE_SIMD)
/// Vector micro-kernel for doubles: each C row of the tile is one Vec4d
/// accumulator; per k step, broadcast one A value per row against one
/// contiguous B row load. Element-for-element the same multiplies and
/// adds in the same order as MicroTileScalar.
inline void MicroTileDouble(const double* apack, const double* b, double* c,
                            int64_t kc, int64_t n) {
  simd::Vec4d acc0 = simd::LoadD(c);
  simd::Vec4d acc1 = simd::LoadD(c + n);
  simd::Vec4d acc2 = simd::LoadD(c + 2 * n);
  simd::Vec4d acc3 = simd::LoadD(c + 3 * n);
  for (int64_t kk = 0; kk < kc; ++kk) {
    const simd::Vec4d brow = simd::LoadD(b + kk * n);
    const double* av = apack + kk * kMr;
    acc0 += av[0] * brow;
    acc1 += av[1] * brow;
    acc2 += av[2] * brow;
    acc3 += av[3] * brow;
  }
  simd::Store(c, acc0);
  simd::Store(c + n, acc1);
  simd::Store(c + 2 * n, acc2);
  simd::Store(c + 3 * n, acc3);
}
#if defined(__x86_64__) || defined(__i386__)
#define EINSQL_GEMM_X86_DISPATCH 1

/// Runtime AVX2 detection, cached after the first query. The AVX2
/// micro-kernel below carries a per-function target attribute, so this
/// translation unit stays baseline-portable — the wide path is only
/// *taken* (never merely compiled in) on CPUs that report AVX2.
inline bool CpuHasAvx2() {
  static const bool kHas = __builtin_cpu_supports("avx2") != 0;
  return kHas;
}

/// 4x8 AVX2 micro-kernel: two Vec4d (ymm) accumulators per C row — eight
/// independent add chains, enough to cover the FP add latency. Only
/// vmulpd + vaddpd are used; FMA is deliberately absent from the target
/// string, because fused rounding would break the bit-identity contract
/// with the scalar twin. Per C element this is exactly the same multiply
/// and add sequence, in the same ascending-k order, as MicroTileScalar.
__attribute__((target("avx2"))) inline void MicroTileDoubleAvx2(
    const double* apack, const double* b, double* c, int64_t kc, int64_t n) {
  simd::Vec4d acc00 = simd::LoadD(c);
  simd::Vec4d acc01 = simd::LoadD(c + 4);
  simd::Vec4d acc10 = simd::LoadD(c + n);
  simd::Vec4d acc11 = simd::LoadD(c + n + 4);
  simd::Vec4d acc20 = simd::LoadD(c + 2 * n);
  simd::Vec4d acc21 = simd::LoadD(c + 2 * n + 4);
  simd::Vec4d acc30 = simd::LoadD(c + 3 * n);
  simd::Vec4d acc31 = simd::LoadD(c + 3 * n + 4);
  for (int64_t kk = 0; kk < kc; ++kk) {
    const simd::Vec4d b0 = simd::LoadD(b + kk * n);
    const simd::Vec4d b1 = simd::LoadD(b + kk * n + 4);
    const double* av = apack + kk * kMr;
    acc00 += av[0] * b0;
    acc01 += av[0] * b1;
    acc10 += av[1] * b0;
    acc11 += av[1] * b1;
    acc20 += av[2] * b0;
    acc21 += av[2] * b1;
    acc30 += av[3] * b0;
    acc31 += av[3] * b1;
  }
  simd::Store(c, acc00);
  simd::Store(c + 4, acc01);
  simd::Store(c + n, acc10);
  simd::Store(c + n + 4, acc11);
  simd::Store(c + 2 * n, acc20);
  simd::Store(c + 2 * n + 4, acc21);
  simd::Store(c + 3 * n, acc30);
  simd::Store(c + 3 * n + 4, acc31);
}
#endif  // x86 dispatch
#endif  // EINSQL_HAVE_SIMD

template <typename V>
inline void MicroTile(const V* apack, const V* b, V* c, int64_t kc,
                      int64_t n) {
#if defined(EINSQL_HAVE_SIMD)
  if constexpr (std::is_same_v<V, double>) {
    if (simd::Enabled()) {
      MicroTileDouble(apack, b, c, kc, n);
      return;
    }
  }
#endif
  MicroTileScalar(apack, b, c, kc, n);
}

}  // namespace gemm_internal

/// Reference kernel: the i/k/j loop nest with zero-skip that ContractPair
/// used before blocking. C must be zero-initialized (or hold the running
/// sum being extended).
template <typename V>
void GemmNaive(const V* a, const V* b, V* c, int64_t m, int64_t k,
               int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const V aval = a[i * k + kk];
      if (aval == V(0)) continue;
      const V* brow = b + kk * n;
      V* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

/// Cache-blocked production kernel. Accumulates C[i,j] in ascending-k
/// order into a single running value per element (see file comment for
/// the bit-identity contract).
template <typename V>
void Gemm(const V* a, const V* b, V* c, int64_t m, int64_t k, int64_t n) {
  using gemm_internal::kKc;
  using gemm_internal::kMr;
  using gemm_internal::kNr;
  // Packed A tile: kMr rows by up to kKc k-steps, stored k-major so the
  // micro-kernel reads it as one forward stream. Rows past the edge of A
  // pack zeros; the micro-kernel never stores their accumulators.
  std::vector<V> apack(static_cast<size_t>(kMr * kKc));
  for (int64_t pc = 0; pc < k; pc += kKc) {  // ascending k panels
    const int64_t kc = std::min(kKc, k - pc);
    for (int64_t i0 = 0; i0 < m; i0 += kMr) {
      const int64_t mr = std::min(kMr, m - i0);
      for (int64_t kk = 0; kk < kc; ++kk) {
        for (int64_t r = 0; r < kMr; ++r) {
          apack[kk * kMr + r] =
              r < mr ? a[(i0 + r) * k + (pc + kk)] : V(0);
        }
      }
      const V* bpanel = b + pc * n;
      int64_t j0 = 0;
      if (mr == kMr) {
#if defined(EINSQL_HAVE_SIMD) && defined(EINSQL_GEMM_X86_DISPATCH)
        if constexpr (std::is_same_v<V, double>) {
          // Wide tiles first; identical per-element operation order, so
          // the mixed 4x8 / 4x4 / scalar coverage of one row block is
          // still bit-identical to all-scalar execution.
          if (simd::Enabled() && gemm_internal::CpuHasAvx2()) {
            for (; j0 + 2 * kNr <= n; j0 += 2 * kNr) {
              gemm_internal::MicroTileDoubleAvx2(apack.data(), bpanel + j0,
                                                 c + i0 * n + j0, kc, n);
            }
          }
        }
#endif
        for (; j0 + kNr <= n; j0 += kNr) {
          gemm_internal::MicroTile(apack.data(), bpanel + j0,
                                   c + i0 * n + j0, kc, n);
        }
      }
      // Edge tiles (bottom rows, right columns): plain scalar loops with
      // the same load-once / ascending-k / store-once discipline.
      for (int64_t r = 0; r < mr; ++r) {
        for (int64_t j = j0; j < n; ++j) {
          V acc = c[(i0 + r) * n + j];
          for (int64_t kk = 0; kk < kc; ++kk) {
            acc += apack[kk * kMr + r] * bpanel[kk * n + j];
          }
          c[(i0 + r) * n + j] = acc;
        }
      }
    }
  }
}

}  // namespace einsql

#endif  // EINSQL_TENSOR_GEMM_H_
