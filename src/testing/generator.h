#ifndef EINSQL_TESTING_GENERATOR_H_
#define EINSQL_TESTING_GENERATOR_H_

#include "common/rng.h"
#include "testing/instance.h"

namespace einsql::testing {

/// Knobs of the random einsum instance generator. The defaults aim at the
/// regime where every oracle (including the exponential brute-force
/// reference) stays fast, while still covering diagonals, batch indices,
/// degenerate size-0/1 dimensions, empty tensors, complex values, and —
/// through occasional "chain mode" draws — expressions with hundreds of
/// labels, far beyond the 52-letter format alphabet.
struct GeneratorOptions {
  int min_operands = 1;
  int max_operands = 5;
  int max_rank = 4;
  /// Extents are drawn from [2, max_extent], except for degenerate draws.
  int64_t max_extent = 4;
  /// Probability that a label's extent is 1 / is 0 (degenerate cases).
  double one_extent_probability = 0.12;
  double zero_extent_probability = 0.04;
  /// Probability that an instance is complex-valued.
  double complex_probability = 0.25;
  /// Expected fraction of stored entries per operand; individual operands
  /// are occasionally forced fully dense or fully empty regardless.
  double density = 0.55;
  /// Probability that an instance is a long matrix chain over wide labels
  /// (#1000, #1001, ...) instead of a small random expression.
  double chain_probability = 0.04;
  int chain_min_length = 60;
  int chain_max_length = 160;
  /// Hard cap on the joint index space so the brute-force oracle is instant
  /// (chain-mode instances ignore it; they skip the brute-force oracle).
  int64_t max_joint_space = 4096;
};

/// Draws one random, internally consistent instance. Deterministic in the
/// RNG state: the same seed and options always produce the same instance.
EinsumInstance GenerateInstance(Rng* rng, const GeneratorOptions& options = {});

}  // namespace einsql::testing

#endif  // EINSQL_TESTING_GENERATOR_H_
