#include "testing/shrink.h"

#include <algorithm>
#include <optional>

namespace einsql::testing {

namespace {

// Removes output labels that no longer occur in any input (a candidate that
// dropped their last occurrence would otherwise be invalid).
void PruneOutput(EinsumSpec* spec) {
  Term pruned;
  for (Label c : spec->output) {
    for (const Term& term : spec->inputs) {
      if (term.find(c) != Term::npos) {
        pruned.push_back(c);
        break;
      }
    }
  }
  spec->output = std::move(pruned);
}

template <typename V>
Coo<V> SliceAxis(const Coo<V>& tensor, int axis) {
  Shape shape = tensor.shape();
  shape.erase(shape.begin() + axis);
  Coo<V> out(shape);
  const int r = tensor.rank();
  for (int64_t k = 0; k < tensor.nnz(); ++k) {
    if (tensor.raw_coords()[k * r + axis] != 0) continue;
    std::vector<int64_t> coords;
    for (int d = 0; d < r; ++d) {
      if (d != axis) coords.push_back(tensor.raw_coords()[k * r + d]);
    }
    (void)out.Append(coords, tensor.ValueAt(k));
  }
  return out;
}

template <typename V>
Coo<V> ClampAxes(const Coo<V>& tensor, const Shape& new_shape) {
  Coo<V> out(new_shape);
  const int r = tensor.rank();
  for (int64_t k = 0; k < tensor.nnz(); ++k) {
    std::vector<int64_t> coords = tensor.CoordsAt(k);
    bool keep = true;
    for (int d = 0; d < r && keep; ++d) {
      if (coords[d] >= new_shape[d]) keep = false;
    }
    if (keep) (void)out.Append(coords, tensor.ValueAt(k));
  }
  return out;
}

template <typename V>
Coo<V> KeepEntryRange(const Coo<V>& tensor, int64_t begin, int64_t end) {
  Coo<V> out(tensor.shape());
  for (int64_t k = 0; k < tensor.nnz(); ++k) {
    if (k >= begin && k < end) continue;  // this range is dropped
    (void)out.Append(tensor.CoordsAt(k), tensor.ValueAt(k));
  }
  return out;
}

template <typename V>
Coo<V> UnitValues(const Coo<V>& tensor) {
  Coo<V> out(tensor.shape());
  for (int64_t k = 0; k < tensor.nnz(); ++k) {
    (void)out.Append(tensor.CoordsAt(k), V(1));
  }
  return out;
}

// Applies `fn` to the operand tensor list of whichever dtype is active.
template <typename Fn>
void ForEachDtype(EinsumInstance* instance, int operand, const Fn& fn) {
  if (instance->complex_values) {
    instance->complex_tensors[operand] =
        fn(instance->complex_tensors[operand]);
  } else {
    instance->real_tensors[operand] = fn(instance->real_tensors[operand]);
  }
}

class Shrinker {
 public:
  Shrinker(const StillFailsFn& still_fails, const ShrinkOptions& options,
           ShrinkStats* stats)
      : still_fails_(still_fails), options_(options), stats_(stats) {}

  EinsumInstance Run(EinsumInstance current) {
    bool progress = true;
    while (progress && !Exhausted()) {
      progress = false;
      progress |= TryDropOperands(&current);
      progress |= TryDropAxes(&current);
      progress |= TryShrinkExtents(&current);
      progress |= TryDropEntries(&current);
      progress |= TryUnitValues(&current);
      progress |= TryRealify(&current);
      progress |= TryAsciiLabels(&current);
      progress |= TryDropOutputLabels(&current);
    }
    return current;
  }

 private:
  bool Exhausted() const { return attempts_ >= options_.max_attempts; }

  // Accepts `candidate` into `*current` iff it is valid and still failing.
  bool Accept(EinsumInstance* current, EinsumInstance candidate) {
    if (Exhausted()) return false;
    if (!candidate.Validate().ok()) return false;
    ++attempts_;
    if (stats_ != nullptr) stats_->attempts = attempts_;
    if (!still_fails_(candidate)) return false;
    *current = std::move(candidate);
    if (stats_ != nullptr) ++stats_->accepted;
    return true;
  }

  bool TryDropOperands(EinsumInstance* current) {
    bool progress = false;
    for (int t = current->num_operands() - 1; t >= 0; --t) {
      if (current->num_operands() <= 1) break;
      EinsumInstance candidate = *current;
      candidate.spec.inputs.erase(candidate.spec.inputs.begin() + t);
      if (candidate.complex_values) {
        candidate.complex_tensors.erase(candidate.complex_tensors.begin() + t);
      } else {
        candidate.real_tensors.erase(candidate.real_tensors.begin() + t);
      }
      PruneOutput(&candidate.spec);
      progress |= Accept(current, std::move(candidate));
    }
    return progress;
  }

  bool TryDropAxes(EinsumInstance* current) {
    bool progress = false;
    for (int t = 0; t < current->num_operands(); ++t) {
      for (int d = static_cast<int>(current->spec.inputs[t].size()) - 1;
           d >= 0; --d) {
        EinsumInstance candidate = *current;
        candidate.spec.inputs[t].erase(candidate.spec.inputs[t].begin() + d);
        ForEachDtype(&candidate, t,
                     [&](const auto& tensor) { return SliceAxis(tensor, d); });
        PruneOutput(&candidate.spec);
        progress |= Accept(current, std::move(candidate));
      }
    }
    return progress;
  }

  bool TryShrinkExtents(EinsumInstance* current) {
    bool progress = false;
    // Distinct labels with extent > 1, via the instance's own extents map.
    auto extents = IndexExtents(current->spec, current->shapes());
    if (!extents.ok()) return false;
    for (const auto& [label, extent] : *extents) {
      if (extent <= 1) continue;
      for (int64_t target : {int64_t{1}, extent / 2, extent - 1}) {
        if (target <= 0 || target >= extent) continue;
        EinsumInstance candidate = *current;
        for (int t = 0; t < candidate.num_operands(); ++t) {
          const Term& term = candidate.spec.inputs[t];
          Shape new_shape;
          bool touched = false;
          for (size_t d = 0; d < term.size(); ++d) {
            const int64_t e = candidate.shapes()[t][d];
            new_shape.push_back(term[d] == label ? target : e);
            touched |= term[d] == label;
          }
          if (!touched) continue;
          ForEachDtype(&candidate, t, [&](const auto& tensor) {
            return ClampAxes(tensor, new_shape);
          });
        }
        if (Accept(current, std::move(candidate))) {
          progress = true;
          break;  // extents changed; recompute before shrinking further
        }
      }
      if (progress) break;
    }
    return progress;
  }

  bool TryDropEntries(EinsumInstance* current) {
    bool progress = false;
    for (int t = 0; t < current->num_operands(); ++t) {
      const int64_t nnz = current->complex_values
                              ? current->complex_tensors[t].nnz()
                              : current->real_tensors[t].nnz();
      if (nnz == 0) continue;
      // Delta-debugging style: halves first, then single entries for small
      // tensors.
      std::vector<std::pair<int64_t, int64_t>> ranges;
      if (nnz > 1) {
        ranges.emplace_back(0, nnz / 2);
        ranges.emplace_back(nnz / 2, nnz);
      }
      if (nnz <= 8) {
        for (int64_t k = 0; k < nnz; ++k) ranges.emplace_back(k, k + 1);
      }
      for (const auto& [begin, end] : ranges) {
        EinsumInstance candidate = *current;
        ForEachDtype(&candidate, t, [&](const auto& tensor) {
          return KeepEntryRange(tensor, begin, end);
        });
        if (Accept(current, std::move(candidate))) {
          progress = true;
          break;  // entry indices shifted; recompute ranges
        }
      }
    }
    return progress;
  }

  bool TryUnitValues(EinsumInstance* current) {
    bool progress = false;
    for (int t = 0; t < current->num_operands(); ++t) {
      EinsumInstance candidate = *current;
      ForEachDtype(&candidate, t,
                   [&](const auto& tensor) { return UnitValues(tensor); });
      progress |= Accept(current, std::move(candidate));
    }
    return progress;
  }

  bool TryRealify(EinsumInstance* current) {
    if (!current->complex_values) return false;
    EinsumInstance candidate = *current;
    candidate.complex_values = false;
    for (const ComplexCooTensor& t : candidate.complex_tensors) {
      CooTensor real(t.shape());
      for (int64_t k = 0; k < t.nnz(); ++k) {
        if (t.ValueAt(k).real() == 0.0) continue;
        (void)real.Append(t.CoordsAt(k), t.ValueAt(k).real());
      }
      candidate.real_tensors.push_back(std::move(real));
    }
    candidate.complex_tensors.clear();
    return Accept(current, std::move(candidate));
  }

  bool TryAsciiLabels(EinsumInstance* current) {
    bool wide = false;
    Term distinct;
    for (const Term& term : current->spec.inputs) {
      for (Label c : term) {
        wide |= c >= 128;
        if (distinct.find(c) == Term::npos) distinct.push_back(c);
      }
    }
    if (!wide || distinct.size() > 26) return false;
    EinsumInstance candidate = *current;
    auto remap = [&](Term* term) {
      for (Label& c : *term) {
        c = static_cast<Label>('a' + distinct.find(c));
      }
    };
    for (Term& term : candidate.spec.inputs) remap(&term);
    remap(&candidate.spec.output);
    return Accept(current, std::move(candidate));
  }

  bool TryDropOutputLabels(EinsumInstance* current) {
    bool progress = false;
    for (int k = static_cast<int>(current->spec.output.size()) - 1; k >= 0;
         --k) {
      EinsumInstance candidate = *current;
      candidate.spec.output.erase(candidate.spec.output.begin() + k);
      progress |= Accept(current, std::move(candidate));
    }
    return progress;
  }

  const StillFailsFn& still_fails_;
  const ShrinkOptions& options_;
  ShrinkStats* stats_;
  int attempts_ = 0;
};

}  // namespace

EinsumInstance ShrinkInstance(const EinsumInstance& failing,
                              const StillFailsFn& still_fails,
                              const ShrinkOptions& options,
                              ShrinkStats* stats) {
  return Shrinker(still_fails, options, stats).Run(failing);
}

}  // namespace einsql::testing
