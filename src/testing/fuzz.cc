#include "testing/fuzz.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "common/rng.h"
#include "common/stopwatch.h"

namespace einsql::testing {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendDivergences(const CheckReport& report, std::ostringstream* out) {
  *out << "[";
  for (size_t k = 0; k < report.divergences.size(); ++k) {
    const Divergence& d = report.divergences[k];
    if (k > 0) *out << ",";
    *out << "{\"oracle\":\"" << JsonEscape(d.oracle) << "\","
         << "\"baseline\":\"" << JsonEscape(d.baseline) << "\","
         << "\"kind\":\"" << JsonEscape(d.kind) << "\","
         << "\"path\":\"" << PathAlgorithmToString(d.path) << "\","
         << "\"detail\":\"" << JsonEscape(d.detail) << "\"}";
  }
  *out << "]";
}

// Runs one instance through the check; on failure shrinks it and appends a
// FuzzFailure. Returns true when the failure budget allows continuing.
void CheckOne(const EinsumInstance& instance, int iteration,
              const FuzzOptions& options, const std::vector<Oracle*>& oracles,
              FuzzReport* report, std::ostream* log) {
  CheckReport check = CheckInstance(instance, oracles, options.differential);
  report->evaluations += check.evaluations;
  report->skips += check.skips;
  if (check.ok()) return;

  FuzzFailure failure;
  failure.iteration = iteration;
  failure.original = instance;
  failure.original_report = check;
  if (log != nullptr) {
    *log << "FAIL [" << iteration << "] " << instance.DebugString() << "\n"
         << check.summary() << "\n";
  }

  failure.shrunk = instance;
  failure.shrunk_report = check;
  if (options.shrink) {
    StillFailsFn still_fails = [&](const EinsumInstance& candidate) {
      return !CheckInstance(candidate, oracles, options.differential).ok();
    };
    failure.shrunk = ShrinkInstance(instance, still_fails,
                                    options.shrink_options,
                                    &failure.shrink_stats);
    failure.shrunk_report =
        CheckInstance(failure.shrunk, oracles, options.differential);
    if (log != nullptr) {
      *log << "shrunk (" << failure.shrink_stats.accepted << "/"
           << failure.shrink_stats.attempts << " accepted/tried) to: "
           << failure.shrunk.DebugString() << "\n"
           << failure.shrunk_report.summary() << "\nrepro:\n"
           << failure.shrunk.ToCppSnippet() << "\n";
    }
  }
  report->failures.push_back(std::move(failure));
}

}  // namespace

std::string FuzzReport::ToJson() const {
  std::ostringstream out;
  out << "{\"seed\":" << seed << ","
      << "\"iterations_run\":" << iterations_run << ","
      << "\"evaluations\":" << evaluations << ","
      << "\"skips\":" << skips << ","
      << "\"elapsed_seconds\":" << elapsed_seconds << ","
      << "\"ok\":" << (ok() ? "true" : "false") << ","
      << "\"failures\":[";
  for (size_t i = 0; i < failures.size(); ++i) {
    const FuzzFailure& f = failures[i];
    if (i > 0) out << ",";
    out << "{\"iteration\":" << f.iteration << ","
        << "\"original\":{\"corpus\":\"" << JsonEscape(f.original.Serialize())
        << "\",\"debug\":\"" << JsonEscape(f.original.DebugString())
        << "\",\"divergences\":";
    AppendDivergences(f.original_report, &out);
    out << "},\"shrunk\":{\"corpus\":\"" << JsonEscape(f.shrunk.Serialize())
        << "\",\"debug\":\"" << JsonEscape(f.shrunk.DebugString())
        << "\",\"repro_cc\":\"" << JsonEscape(f.shrunk.ToCppSnippet())
        << "\",\"divergences\":";
    AppendDivergences(f.shrunk_report, &out);
    out << "},\"shrink_attempts\":" << f.shrink_stats.attempts << ","
        << "\"shrink_accepted\":" << f.shrink_stats.accepted << "}";
  }
  out << "]}";
  return out.str();
}

FuzzReport RunFuzz(const FuzzOptions& options,
                   const std::vector<Oracle*>& oracles, std::ostream* log) {
  FuzzReport report;
  report.seed = options.seed;
  Rng rng(options.seed);
  Stopwatch watch;
  for (int i = 0;; ++i) {
    if (options.iterations > 0 && i >= options.iterations) break;
    if (options.duration_seconds > 0 &&
        watch.ElapsedSeconds() >= options.duration_seconds) {
      break;
    }
    if (options.iterations <= 0 && options.duration_seconds <= 0) break;
    EinsumInstance instance = GenerateInstance(&rng, options.generator);
    instance.name = "seed" + std::to_string(options.seed) + "-iter" +
                    std::to_string(i);
    ++report.iterations_run;
    CheckOne(instance, i, options, oracles, &report, log);
    if (!report.failures.empty() && options.stop_on_failure) break;
  }
  report.elapsed_seconds = watch.ElapsedSeconds();
  if (log != nullptr) {
    *log << "fuzz: " << report.iterations_run << " instances, "
         << report.evaluations << " oracle evaluations, " << report.skips
         << " skips, " << report.failures.size() << " failure(s) in "
         << report.elapsed_seconds << "s\n";
  }
  return report;
}

FuzzReport ReplayInstances(const std::vector<EinsumInstance>& instances,
                           const FuzzOptions& options,
                           const std::vector<Oracle*>& oracles,
                           std::ostream* log) {
  FuzzReport report;
  report.seed = options.seed;
  Stopwatch watch;
  for (size_t i = 0; i < instances.size(); ++i) {
    ++report.iterations_run;
    CheckOne(instances[i], static_cast<int>(i), options, oracles, &report,
             log);
    if (!report.failures.empty() && options.stop_on_failure) break;
  }
  report.elapsed_seconds = watch.ElapsedSeconds();
  if (log != nullptr) {
    *log << "replay: " << report.iterations_run << " instances, "
         << report.evaluations << " oracle evaluations, " << report.skips
         << " skips, " << report.failures.size() << " failure(s) in "
         << report.elapsed_seconds << "s\n";
  }
  return report;
}

}  // namespace einsql::testing
