#include "testing/differential.h"

#include <optional>
#include <sstream>

#include "common/str_util.h"

namespace einsql::testing {

namespace {

template <typename V>
const std::vector<Coo<V>>& TensorsOf(const EinsumInstance& instance);

template <>
const std::vector<Coo<double>>& TensorsOf(const EinsumInstance& instance) {
  return instance.real_tensors;
}

template <>
const std::vector<Coo<std::complex<double>>>& TensorsOf(
    const EinsumInstance& instance) {
  return instance.complex_tensors;
}

template <typename V>
std::vector<const Coo<V>*> Pointers(const std::vector<Coo<V>>& tensors) {
  std::vector<const Coo<V>*> ptrs;
  ptrs.reserve(tensors.size());
  for (const Coo<V>& t : tensors) ptrs.push_back(&t);
  return ptrs;
}

template <typename V>
Result<Coo<V>> Eval(Oracle* oracle, const ContractionProgram& program,
                    const std::vector<const Coo<V>*>& tensors,
                    const EinsumOptions& options) {
  if constexpr (std::is_same_v<V, double>) {
    return oracle->EvalReal(program, tensors, options);
  } else {
    return oracle->EvalComplex(program, tensors, options);
  }
}

template <typename V>
Coo<V> MapValues(const Coo<V>& tensor, V factor, bool conjugate) {
  Coo<V> out(tensor.shape());
  const int r = tensor.rank();
  for (int64_t k = 0; k < tensor.nnz(); ++k) {
    V value = tensor.ValueAt(k);
    if constexpr (!std::is_same_v<V, double>) {
      if (conjugate) value = std::conj(value);
    }
    (void)out.Append(std::vector<int64_t>(
                         tensor.raw_coords().begin() + k * r,
                         tensor.raw_coords().begin() + (k + 1) * r),
                     value * factor);
  }
  return out;
}

// Flat (single-SELECT) queries cross-join every operand; beyond a handful
// of tensors that is intentionally catastrophic, so the flat variant is
// only cross-checked on small instances.
constexpr int kMaxFlatOperands = 6;
// kOptimal (exact DP) and kBranch (branch-and-bound) do not scale past the
// opt_einsum operand limit; larger instances skip them by design.
constexpr int kMaxExactPathOperands = 16;

template <typename V>
void CheckTyped(const EinsumInstance& instance,
                const std::vector<Oracle*>& oracles,
                const DifferentialOptions& options, CheckReport* report) {
  const std::vector<Coo<V>>& tensors = TensorsOf<V>(instance);
  const std::vector<const Coo<V>*> ptrs = Pointers(tensors);
  const std::vector<Shape> shapes = instance.shapes();
  const int n = instance.num_operands();

  std::optional<Coo<V>> baseline;
  std::string baseline_desc = "<none>";

  auto run_pass = [&](const ContractionProgram& program,
                      const EinsumOptions& eopts, PathAlgorithm path,
                      const char* variant) {
    for (Oracle* oracle : oracles) {
      if (!oracle->Supports(instance)) {
        ++report->skips;
        continue;
      }
      Result<Coo<V>> got = Eval<V>(oracle, program, ptrs, eopts);
      ++report->evaluations;
      if (!got.ok()) {
        if (oracle->MayRefuse(got.status())) {
          ++report->skips;
          continue;
        }
        report->divergences.push_back(
            {oracle->name(), baseline_desc, "status",
             StrCat(variant, ": ", got.status().ToString()), path});
        continue;
      }
      if (!baseline.has_value()) {
        baseline = std::move(got).value();
        baseline_desc = StrCat(oracle->name(), "/",
                               PathAlgorithmToString(path));
        continue;
      }
      std::string mismatch;
      if (!AllCloseTol(*got, *baseline, options.tolerance, &mismatch)) {
        report->divergences.push_back(
            {oracle->name(), baseline_desc, "value",
             StrCat(variant, ": ", mismatch), path});
      }
    }
  };

  bool first_path = true;
  for (PathAlgorithm path : options.paths) {
    if (n > kMaxExactPathOperands &&
        (path == PathAlgorithm::kOptimal || path == PathAlgorithm::kBranch)) {
      continue;
    }
    auto program = BuildProgram(instance.spec, shapes, path);
    if (!program.ok()) {
      report->divergences.push_back(
          {"<planner>", baseline_desc, "plan",
           program.status().ToString(), path});
      continue;
    }
    EinsumOptions eopts;
    eopts.path = path;
    run_pass(*program, eopts, path, "decomposed");
    if (first_path) {
      // Variant passes ride on the first path only: the flat §3.2 query and
      // the no-simplify form (redundant SUM/GROUP BY kept).
      if (options.check_flat && n <= kMaxFlatOperands &&
          !(instance.complex_values && n > 2)) {
        EinsumOptions flat = eopts;
        flat.decompose = false;
        run_pass(*program, flat, path, "flat");
      }
      EinsumOptions no_simplify = eopts;
      no_simplify.simplify = false;
      run_pass(*program, no_simplify, path, "no-simplify");
      first_path = false;
    }
  }

  if (!baseline.has_value() || !options.metamorphic) return;

  // Metamorphic subjects: one backend-less engine of each family. They are
  // cheap, deterministic, and already cross-checked against the SQL oracles
  // above, so a metamorphic divergence localizes to the property itself.
  DenseEinsumEngine dense;
  SparseEinsumEngine sparse;
  EinsumOptions eopts;

  auto check_expected = [&](Result<Coo<V>> got, const Coo<V>& expected,
                            const char* kind, const char* detail_prefix) {
    ++report->evaluations;
    if (!got.ok()) {
      report->divergences.push_back({"metamorphic", baseline_desc, kind,
                                     StrCat(detail_prefix, ": ",
                                            got.status().ToString()),
                                     PathAlgorithm::kAuto});
      return;
    }
    std::string mismatch;
    if (!AllCloseTol(*got, expected, options.tolerance, &mismatch)) {
      report->divergences.push_back({"metamorphic", baseline_desc, kind,
                                     StrCat(detail_prefix, ": ", mismatch),
                                     PathAlgorithm::kAuto});
    }
  };

  // Operand-permutation invariance: rotating the operand list (and the
  // input terms with it) must not change the result.
  if (n >= 2) {
    EinsumSpec rotated_spec;
    rotated_spec.output = instance.spec.output;
    std::vector<const Coo<V>*> rotated_ptrs;
    for (int t = 0; t < n; ++t) {
      const int src = (t + 1) % n;
      rotated_spec.inputs.push_back(instance.spec.inputs[src]);
      rotated_ptrs.push_back(ptrs[src]);
    }
    check_expected(
        [&]() -> Result<Coo<V>> {
          if constexpr (std::is_same_v<V, double>) {
            return sparse.EinsumSpecified(rotated_spec, rotated_ptrs, eopts);
          } else {
            return sparse.ComplexEinsumSpecified(rotated_spec, rotated_ptrs,
                                                 eopts);
          }
        }(),
        *baseline, "metamorphic-permutation", "rotated operands");
  }

  // Scaling linearity: scaling one operand by c scales the result by c.
  {
    const V factor = V(2.5);
    Coo<V> scaled0 = MapValues(tensors[0], factor, /*conjugate=*/false);
    std::vector<const Coo<V>*> scaled_ptrs = ptrs;
    scaled_ptrs[0] = &scaled0;
    const Coo<V> expected =
        MapValues(*baseline, factor, /*conjugate=*/false);
    check_expected(
        [&]() -> Result<Coo<V>> {
          if constexpr (std::is_same_v<V, double>) {
            return dense.EinsumSpecified(instance.spec, scaled_ptrs, eopts);
          } else {
            return dense.ComplexEinsumSpecified(instance.spec, scaled_ptrs,
                                                eopts);
          }
        }(),
        expected, "metamorphic-scaling", "operand 0 scaled by 2.5");
  }

  // Conjugation symmetry: einsum(conj(inputs)) == conj(einsum(inputs)),
  // because conjugation distributes over both + and *.
  if constexpr (!std::is_same_v<V, double>) {
    std::vector<Coo<V>> conjugated;
    conjugated.reserve(tensors.size());
    for (const Coo<V>& t : tensors) {
      conjugated.push_back(MapValues(t, V(1), /*conjugate=*/true));
    }
    const Coo<V> expected = MapValues(*baseline, V(1), /*conjugate=*/true);
    check_expected(
        dense.ComplexEinsumSpecified(instance.spec, Pointers(conjugated),
                                     eopts),
        expected, "metamorphic-conjugation", "conjugated operands");
  }
}

}  // namespace

std::string CheckReport::summary() const {
  std::ostringstream os;
  os << evaluations << " evaluations, " << skips << " skips, "
     << divergences.size() << " divergences";
  for (const Divergence& d : divergences) {
    os << "\n  [" << d.kind << "] " << d.oracle << " vs " << d.baseline
       << " (path=" << PathAlgorithmToString(d.path) << "): " << d.detail;
  }
  return os.str();
}

CheckReport CheckInstance(const EinsumInstance& instance,
                          const std::vector<Oracle*>& oracles,
                          const DifferentialOptions& options) {
  CheckReport report;
  if (Status status = instance.Validate(); !status.ok()) {
    report.divergences.push_back({"<instance>", "<none>", "invalid-instance",
                                  status.ToString(), PathAlgorithm::kAuto});
    return report;
  }
  if (instance.complex_values) {
    CheckTyped<std::complex<double>>(instance, oracles, options, &report);
  } else {
    CheckTyped<double>(instance, oracles, options, &report);
  }
  return report;
}

}  // namespace einsql::testing
