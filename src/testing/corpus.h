#ifndef EINSQL_TESTING_CORPUS_H_
#define EINSQL_TESTING_CORPUS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "testing/instance.h"

namespace einsql::testing {

/// Loads a corpus file: one serialized instance per line (see
/// EinsumInstance::Serialize), '#' comment lines and blank lines ignored.
/// Fails on the first malformed line, naming its line number.
Result<std::vector<EinsumInstance>> LoadCorpus(const std::string& path);

/// Parses corpus-format text that is already in memory.
Result<std::vector<EinsumInstance>> ParseCorpus(std::string_view text);

/// Writes instances in corpus format, with a leading comment header.
Status SaveCorpus(const std::string& path,
                  const std::vector<EinsumInstance>& instances,
                  const std::string& header_comment = "");

}  // namespace einsql::testing

#endif  // EINSQL_TESTING_CORPUS_H_
