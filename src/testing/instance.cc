#include "testing/instance.h"

#include <cctype>
#include <sstream>

#include "common/str_util.h"

namespace einsql::testing {

namespace {

// Renders one label in the corpus syntax: an ASCII letter prints as itself,
// anything else as "#<value>" (matching TermToString).
void AppendLabel(std::string* out, Label label) {
  if (label < 128 && std::isalpha(static_cast<int>(label))) {
    out->push_back(static_cast<char>(label));
  } else {
    *out += "#" + std::to_string(static_cast<uint32_t>(label));
  }
}

Result<Term> ParseTerm(std::string_view text) {
  Term term;
  size_t k = 0;
  while (k < text.size()) {
    const char c = text[k];
    if (std::isalpha(static_cast<unsigned char>(c))) {
      term.push_back(static_cast<unsigned char>(c));
      ++k;
      continue;
    }
    if (c == '#') {
      size_t end = k + 1;
      while (end < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[end]))) {
        ++end;
      }
      if (end == k + 1) {
        return Status::ParseError("'#' without digits in term '", text, "'");
      }
      EINSQL_ASSIGN_OR_RETURN(int64_t value,
                              ParseInt64(text.substr(k + 1, end - k - 1)));
      term.push_back(static_cast<Label>(value));
      k = end;
      continue;
    }
    return Status::ParseError("invalid character '", std::string(1, c),
                              "' in term '", text, "'");
  }
  return term;
}

std::string TermToCorpusString(const Term& term) {
  std::string out;
  for (Label label : term) AppendLabel(&out, label);
  return out;
}

template <typename V>
std::string SerializeTensor(const Coo<V>& tensor) {
  constexpr bool kComplex = !std::is_same_v<V, double>;
  std::string out;
  const int r = tensor.rank();
  for (int64_t k = 0; k < tensor.nnz(); ++k) {
    out += "(";
    for (int d = 0; d < r; ++d) {
      if (d > 0) out += ",";
      out += std::to_string(tensor.raw_coords()[k * r + d]);
    }
    out += ":";
    if constexpr (kComplex) {
      const std::complex<double> v = tensor.ValueAt(k);
      out += DoubleToSqlLiteral(v.real()) + ":" + DoubleToSqlLiteral(v.imag());
    } else {
      out += DoubleToSqlLiteral(tensor.ValueAt(k));
    }
    out += ")";
  }
  return out;
}

template <typename V>
Result<Coo<V>> ParseTensor(const Shape& shape, std::string_view text) {
  constexpr bool kComplex = !std::is_same_v<V, double>;
  Coo<V> tensor(shape);
  size_t k = 0;
  while (k < text.size()) {
    if (text[k] != '(') {
      return Status::ParseError("expected '(' in tensor entries '", text, "'");
    }
    const size_t close = text.find(')', k);
    if (close == std::string_view::npos) {
      return Status::ParseError("unterminated tensor entry in '", text, "'");
    }
    const std::string entry(text.substr(k + 1, close - k - 1));
    const std::vector<std::string> parts = Split(entry, ':');
    const size_t value_parts = kComplex ? 2 : 1;
    if (parts.size() != 1 + value_parts) {
      return Status::ParseError("malformed tensor entry '", entry, "'");
    }
    std::vector<int64_t> coords;
    if (!parts[0].empty()) {
      for (const std::string& piece : Split(parts[0], ',')) {
        EINSQL_ASSIGN_OR_RETURN(int64_t coord, ParseInt64(piece));
        coords.push_back(coord);
      }
    }
    V value;
    if constexpr (kComplex) {
      EINSQL_ASSIGN_OR_RETURN(double re, ParseDouble(parts[1]));
      EINSQL_ASSIGN_OR_RETURN(double im, ParseDouble(parts[2]));
      value = V(re, im);
    } else {
      EINSQL_ASSIGN_OR_RETURN(double v, ParseDouble(parts[1]));
      value = v;
    }
    EINSQL_RETURN_IF_ERROR(tensor.Append(coords, value));
    k = close + 1;
  }
  return tensor;
}

template <typename V>
void EmitTensorSnippet(std::ostream& os, const Coo<V>& tensor,
                       const char* type_name, const char* list_name) {
  constexpr bool kComplex = !std::is_same_v<V, double>;
  os << "  {\n    " << type_name << " t({";
  for (size_t d = 0; d < tensor.shape().size(); ++d) {
    if (d > 0) os << ", ";
    os << tensor.shape()[d];
  }
  os << "});\n";
  const int r = tensor.rank();
  for (int64_t k = 0; k < tensor.nnz(); ++k) {
    os << "    (void)t.Append({";
    for (int d = 0; d < r; ++d) {
      if (d > 0) os << ", ";
      os << tensor.raw_coords()[k * r + d];
    }
    if constexpr (kComplex) {
      const std::complex<double> v = tensor.ValueAt(k);
      os << "}, {" << DoubleToSqlLiteral(v.real()) << ", "
         << DoubleToSqlLiteral(v.imag()) << "});\n";
    } else {
      os << "}, " << DoubleToSqlLiteral(tensor.ValueAt(k)) << ");\n";
    }
  }
  os << "    instance." << list_name << ".push_back(std::move(t));\n  }\n";
}

}  // namespace

std::vector<Shape> EinsumInstance::shapes() const {
  std::vector<Shape> out;
  if (complex_values) {
    for (const ComplexCooTensor& t : complex_tensors) out.push_back(t.shape());
  } else {
    for (const CooTensor& t : real_tensors) out.push_back(t.shape());
  }
  return out;
}

int64_t EinsumInstance::total_nnz() const {
  int64_t total = 0;
  if (complex_values) {
    for (const ComplexCooTensor& t : complex_tensors) total += t.nnz();
  } else {
    for (const CooTensor& t : real_tensors) total += t.nnz();
  }
  return total;
}

double EinsumInstance::joint_space() const {
  auto extents = IndexExtents(spec, shapes());
  if (!extents.ok()) return 0.0;
  double space = 1.0;
  for (const auto& [label, extent] : *extents) {
    space *= static_cast<double>(extent);
  }
  return space;
}

Status EinsumInstance::Validate() const {
  if (complex_values && !real_tensors.empty()) {
    return Status::InvalidArgument(
        "complex instance must not carry real tensors");
  }
  if (!complex_values && !complex_tensors.empty()) {
    return Status::InvalidArgument(
        "real instance must not carry complex tensors");
  }
  EINSQL_RETURN_IF_ERROR(ValidateSpec(spec));
  return IndexExtents(spec, shapes()).status();
}

std::string EinsumInstance::DebugString() const {
  std::ostringstream os;
  os << spec.ToString() << " shapes=" << ShapesToString(shapes())
     << " dtype=" << (complex_values ? "complex" : "real")
     << " nnz=" << total_nnz();
  if (!name.empty()) os << " name=" << name;
  return os.str();
}

std::string EinsumInstance::Serialize() const {
  std::string out;
  if (!name.empty()) out += "name=" + name + "|";
  out += "spec=";
  for (size_t t = 0; t < spec.inputs.size(); ++t) {
    if (t > 0) out += ",";
    out += TermToCorpusString(spec.inputs[t]);
  }
  out += "->" + TermToCorpusString(spec.output);
  out += "|shapes=" + ShapesToString(shapes());
  out += complex_values ? "|dtype=complex" : "|dtype=real";
  for (int t = 0; t < num_operands(); ++t) {
    out += "|t" + std::to_string(t) + "=";
    out += complex_values ? SerializeTensor(complex_tensors[t])
                          : SerializeTensor(real_tensors[t]);
  }
  return out;
}

Result<EinsumInstance> EinsumInstance::Deserialize(std::string_view line) {
  EinsumInstance instance;
  std::vector<Shape> shapes;
  bool have_spec = false, have_shapes = false;
  std::vector<std::string> tensor_fields;
  for (const std::string& field : Split(std::string(Trim(line)), '|')) {
    const size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("corpus field without '=': '", field, "'");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "name") {
      instance.name = value;
    } else if (key == "spec") {
      EINSQL_ASSIGN_OR_RETURN(instance.spec, ParseSpecString(value));
      have_spec = true;
    } else if (key == "shapes") {
      EINSQL_ASSIGN_OR_RETURN(shapes, ParseShapesString(value));
      have_shapes = true;
    } else if (key == "dtype") {
      if (value != "real" && value != "complex") {
        return Status::ParseError("unknown dtype '", value, "'");
      }
      instance.complex_values = value == "complex";
    } else if (key.size() >= 2 && key[0] == 't') {
      EINSQL_ASSIGN_OR_RETURN(int64_t index, ParseInt64(key.substr(1)));
      if (index != static_cast<int64_t>(tensor_fields.size())) {
        return Status::ParseError("tensor fields out of order at '", key, "'");
      }
      tensor_fields.push_back(value);
    } else {
      return Status::ParseError("unknown corpus field '", key, "'");
    }
  }
  if (!have_spec || !have_shapes) {
    return Status::ParseError("corpus line missing spec= or shapes=");
  }
  if (shapes.size() != tensor_fields.size()) {
    return Status::ParseError("corpus line has ", shapes.size(),
                              " shapes but ", tensor_fields.size(),
                              " tensors");
  }
  for (size_t t = 0; t < tensor_fields.size(); ++t) {
    if (instance.complex_values) {
      EINSQL_ASSIGN_OR_RETURN(
          ComplexCooTensor tensor,
          ParseTensor<std::complex<double>>(shapes[t], tensor_fields[t]));
      instance.complex_tensors.push_back(std::move(tensor));
    } else {
      EINSQL_ASSIGN_OR_RETURN(CooTensor tensor,
                              ParseTensor<double>(shapes[t], tensor_fields[t]));
      instance.real_tensors.push_back(std::move(tensor));
    }
  }
  EINSQL_RETURN_IF_ERROR(instance.Validate());
  return instance;
}

std::string EinsumInstance::ToCppSnippet() const {
  std::ostringstream os;
  os << "// einsum-fuzz repro: " << DebugString() << "\n";
  os << "// corpus line: " << Serialize() << "\n";
  os << "einsql::testing::EinsumInstance instance;\n";
  os << "instance.spec = einsql::testing::ParseSpecString(\"";
  for (size_t t = 0; t < spec.inputs.size(); ++t) {
    if (t > 0) os << ",";
    os << TermToCorpusString(spec.inputs[t]);
  }
  os << "->" << TermToCorpusString(spec.output) << "\").value();\n";
  if (complex_values) {
    os << "instance.complex_values = true;\n";
    for (const ComplexCooTensor& t : complex_tensors) {
      EmitTensorSnippet(os, t, "einsql::ComplexCooTensor", "complex_tensors");
    }
  } else {
    for (const CooTensor& t : real_tensors) {
      EmitTensorSnippet(os, t, "einsql::CooTensor", "real_tensors");
    }
  }
  os << "auto oracles = einsql::testing::MakeDefaultOracles();\n";
  os << "einsql::testing::CheckReport report = einsql::testing::CheckInstance"
        "(\n    instance, einsql::testing::OraclePointers(oracles), {});\n";
  os << "// report.ok() is false while the bug reproduces; see\n";
  os << "// report.summary() for the diverging oracle.\n";
  return os.str();
}

Result<EinsumSpec> ParseSpecString(std::string_view text) {
  const std::string clean(Trim(text));
  const size_t arrow = clean.find("->");
  if (arrow == std::string::npos) {
    return Status::ParseError("spec '", clean, "' lacks '->'");
  }
  EinsumSpec spec;
  const std::string lhs = clean.substr(0, arrow);
  if (lhs.empty()) return Status::ParseError("spec has no input terms");
  for (const std::string& piece : Split(lhs, ',')) {
    EINSQL_ASSIGN_OR_RETURN(Term term, ParseTerm(piece));
    spec.inputs.push_back(std::move(term));
  }
  EINSQL_ASSIGN_OR_RETURN(spec.output, ParseTerm(clean.substr(arrow + 2)));
  EINSQL_RETURN_IF_ERROR(ValidateSpec(spec));
  return spec;
}

std::string ShapesToString(const std::vector<Shape>& shapes) {
  std::string out;
  for (const Shape& shape : shapes) {
    out += "[";
    for (size_t d = 0; d < shape.size(); ++d) {
      if (d > 0) out += ",";
      out += std::to_string(shape[d]);
    }
    out += "]";
  }
  return out;
}

Result<std::vector<Shape>> ParseShapesString(std::string_view text) {
  std::vector<Shape> shapes;
  size_t k = 0;
  while (k < text.size()) {
    if (text[k] != '[') {
      return Status::ParseError("expected '[' in shapes '", text, "'");
    }
    const size_t close = text.find(']', k);
    if (close == std::string_view::npos) {
      return Status::ParseError("unterminated shape in '", text, "'");
    }
    Shape shape;
    const std::string body(text.substr(k + 1, close - k - 1));
    if (!body.empty()) {
      for (const std::string& piece : Split(body, ',')) {
        EINSQL_ASSIGN_OR_RETURN(int64_t extent, ParseInt64(piece));
        shape.push_back(extent);
      }
    }
    shapes.push_back(std::move(shape));
    k = close + 1;
  }
  return shapes;
}

}  // namespace einsql::testing
