#ifndef EINSQL_TESTING_ORACLES_H_
#define EINSQL_TESTING_ORACLES_H_

#include <memory>
#include <string>
#include <vector>

#include "backends/einsum_engine.h"
#include "minidb/planner.h"
#include "testing/instance.h"

namespace einsql::testing {

/// One way of evaluating an einsum instance. The differential runner
/// evaluates every instance through every oracle and demands agreement; a
/// divergence is a correctness bug in (at least) one of them.
class Oracle {
 public:
  virtual ~Oracle() = default;

  /// Stable identifier, e.g. "reference", "minidb-aggressive", "sqlite".
  virtual std::string name() const = 0;

  /// False when the oracle cannot evaluate this instance at all (the
  /// brute-force reference bows out of huge joint index spaces). Skipped
  /// oracles are not divergences.
  virtual bool Supports(const EinsumInstance& instance) const {
    (void)instance;
    return true;
  }

  /// True when `status` is a documented refusal rather than a bug — e.g.
  /// MiniDB's exhaustive optimizer aborting with OutOfRange once its
  /// planning budget is exhausted (the paper's DuckDB "N/A" row).
  virtual bool MayRefuse(const Status& status) const {
    (void)status;
    return false;
  }

  /// Evaluates a prebuilt contraction program. The program is built once
  /// per path algorithm and shared across oracles, so every oracle sees the
  /// exact same pairwise plan.
  virtual Result<CooTensor> EvalReal(
      const ContractionProgram& program,
      const std::vector<const CooTensor*>& tensors,
      const EinsumOptions& options) = 0;
  virtual Result<ComplexCooTensor> EvalComplex(
      const ContractionProgram& program,
      const std::vector<const ComplexCooTensor*>& tensors,
      const EinsumOptions& options) = 0;
};

/// Brute-force nested-loop oracle (the paper's Listing 1/2 semantics).
/// Ground truth, but exponential in the number of distinct labels; refuses
/// instances whose joint index space exceeds `max_joint_space`.
class ReferenceOracle : public Oracle {
 public:
  explicit ReferenceOracle(double max_joint_space = 1 << 16)
      : max_joint_space_(max_joint_space) {}
  std::string name() const override { return "reference"; }
  bool Supports(const EinsumInstance& instance) const override;
  Result<CooTensor> EvalReal(const ContractionProgram& program,
                             const std::vector<const CooTensor*>& tensors,
                             const EinsumOptions& options) override;
  Result<ComplexCooTensor> EvalComplex(
      const ContractionProgram& program,
      const std::vector<const ComplexCooTensor*>& tensors,
      const EinsumOptions& options) override;

 private:
  double max_joint_space_;
};

/// Oracle over any EinsumEngine (dense, sparse, or SQL-backed). Owns the
/// engine and, optionally, the backend it runs on.
class EngineOracle : public Oracle {
 public:
  /// Engine with no backing store (dense / sparse).
  EngineOracle(std::string name, std::unique_ptr<EinsumEngine> engine)
      : name_(std::move(name)), engine_(std::move(engine)) {}

  /// SQL engine over an owned backend; `refuse_out_of_range` marks
  /// planner-budget aborts as documented refusals.
  EngineOracle(std::string name, std::unique_ptr<SqlBackend> backend,
               bool refuse_out_of_range);

  std::string name() const override { return name_; }
  bool MayRefuse(const Status& status) const override {
    return refuse_out_of_range_ && status.code() == StatusCode::kOutOfRange;
  }
  Result<CooTensor> EvalReal(const ContractionProgram& program,
                             const std::vector<const CooTensor*>& tensors,
                             const EinsumOptions& options) override;
  Result<ComplexCooTensor> EvalComplex(
      const ContractionProgram& program,
      const std::vector<const ComplexCooTensor*>& tensors,
      const EinsumOptions& options) override;

 private:
  std::string name_;
  std::unique_ptr<SqlBackend> backend_;  // null for backend-less engines
  std::unique_ptr<EinsumEngine> engine_;
  bool refuse_out_of_range_ = false;
};

/// Metamorphic wrapper: evaluates `inner` twice — once with the SIMD
/// kernels forced on and once forced off (simd::ScopedEnable) — and
/// returns an Internal error unless the two results are byte-identical
/// (same shape, same coordinates, same value *bit patterns*). This is the
/// fuzz-level enforcement of the bit-identity contract in docs/kernels.md:
/// MINIDB_NO_SIMD=1 must never change any query result by even one ulp.
/// The SIMD-on result is returned, so the wrapped oracle still
/// participates in ordinary cross-oracle differential checking.
class SimdInvarianceOracle : public Oracle {
 public:
  explicit SimdInvarianceOracle(std::unique_ptr<Oracle> inner);
  std::string name() const override { return name_; }
  bool Supports(const EinsumInstance& instance) const override {
    return inner_->Supports(instance);
  }
  bool MayRefuse(const Status& status) const override {
    return inner_->MayRefuse(status);
  }
  Result<CooTensor> EvalReal(const ContractionProgram& program,
                             const std::vector<const CooTensor*>& tensors,
                             const EinsumOptions& options) override;
  Result<ComplexCooTensor> EvalComplex(
      const ContractionProgram& program,
      const std::vector<const ComplexCooTensor*>& tensors,
      const EinsumOptions& options) override;

 private:
  std::string name_;
  std::unique_ptr<Oracle> inner_;
};

/// The full default oracle battery:
///   reference, dense, sparse,
///   minidb-none / minidb-greedy / minidb-aggressive / minidb-exhaustive
///   (all four optimizer-effort levels, sequential),
///   minidb-vec-none / -greedy / -aggressive / -exhaustive (the same four
///   levels on the column-at-a-time executor),
///   minidb-parallel (greedy optimizer, morsel-driven execution),
///   minidb-vec-parallel (vectorized batches over real morsels),
///   simd-invariance/dense and simd-invariance/minidb-vec-greedy
///   (SimdInvarianceOracle wrappers: SIMD-on vs SIMD-off byte identity),
///   sqlite.
/// `name_filter`, when non-empty, keeps only oracles whose name contains it
/// as a substring (comma-separated alternatives allowed).
std::vector<std::unique_ptr<Oracle>> MakeDefaultOracles(
    const std::string& name_filter = "");

/// Borrowed-pointer view of an owned oracle list.
std::vector<Oracle*> OraclePointers(
    const std::vector<std::unique_ptr<Oracle>>& oracles);

}  // namespace einsql::testing

#endif  // EINSQL_TESTING_ORACLES_H_
