#ifndef EINSQL_TESTING_FUZZ_H_
#define EINSQL_TESTING_FUZZ_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "testing/differential.h"
#include "testing/generator.h"
#include "testing/shrink.h"

namespace einsql::testing {

/// Configuration of one fuzzing session.
struct FuzzOptions {
  uint64_t seed = 1;
  /// Stop after this many instances (0 = no iteration bound).
  int iterations = 100;
  /// Stop after this many seconds (0 = no time box). With both bounds set,
  /// whichever trips first ends the run; at least one must be set.
  double duration_seconds = 0.0;
  GeneratorOptions generator;
  DifferentialOptions differential;
  /// Minimize failures before reporting them.
  bool shrink = true;
  ShrinkOptions shrink_options;
  /// Stop the whole session at the first failure.
  bool stop_on_failure = false;
};

/// One (possibly shrunk) failing instance.
struct FuzzFailure {
  int iteration = 0;
  EinsumInstance original;
  CheckReport original_report;
  /// Equal to `original` when shrinking is disabled or made no progress.
  EinsumInstance shrunk;
  CheckReport shrunk_report;
  ShrinkStats shrink_stats;
};

/// Aggregate outcome of a session.
struct FuzzReport {
  uint64_t seed = 0;
  int iterations_run = 0;
  int64_t evaluations = 0;
  int64_t skips = 0;
  double elapsed_seconds = 0.0;
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
  /// Machine-readable run report (schema documented in docs/fuzzing.md).
  std::string ToJson() const;
};

/// Runs a generate -> differential-check -> shrink loop. Progress and
/// failure repros are streamed to `log` when non-null.
FuzzReport RunFuzz(const FuzzOptions& options,
                   const std::vector<Oracle*>& oracles,
                   std::ostream* log = nullptr);

/// Replays pre-built instances (a corpus) through the differential check;
/// shrinks failures exactly like RunFuzz. `options.iterations` and the time
/// box are ignored — every instance is checked.
FuzzReport ReplayInstances(const std::vector<EinsumInstance>& instances,
                           const FuzzOptions& options,
                           const std::vector<Oracle*>& oracles,
                           std::ostream* log = nullptr);

}  // namespace einsql::testing

#endif  // EINSQL_TESTING_FUZZ_H_
