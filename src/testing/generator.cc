#include "testing/generator.h"

#include <algorithm>

namespace einsql::testing {

namespace {

// First label of the wide (non-ASCII) pools. Chain-mode instances use
// kChainBase so their labels never collide with format-string letters.
constexpr Label kWidePoolBase = 500;
constexpr Label kChainBase = 1000;

void Shuffle(Rng* rng, Term* term) {
  for (size_t k = term->size(); k > 1; --k) {
    const size_t j = static_cast<size_t>(rng->UniformInt(0, k - 1));
    std::swap((*term)[k - 1], (*term)[j]);
  }
}

double DrawValue(Rng* rng, bool integer_values) {
  if (integer_values) {
    return static_cast<double>(rng->UniformInt(-3, 3));
  }
  return rng->UniformDouble(-2.0, 2.0);
}

// Fills one operand tensor. Some operands are forced fully empty or fully
// dense so the harness covers the zero-row VALUES CTE and the dense regime.
template <typename V>
Coo<V> DrawTensor(Rng* rng, const Shape& shape, double density,
                  bool integer_values) {
  Coo<V> tensor(shape);
  const auto total_or = NumElements(shape);
  if (!total_or.ok()) return tensor;
  const int64_t total = total_or.value();
  double fill = density;
  if (rng->Bernoulli(0.08)) fill = 0.0;
  if (rng->Bernoulli(0.12)) fill = 1.0;
  const auto strides = RowMajorStrides(shape);
  std::vector<int64_t> coords(shape.size());
  for (int64_t flat = 0; flat < total; ++flat) {
    if (!rng->Bernoulli(fill)) continue;
    int64_t rem = flat;
    for (size_t d = 0; d < shape.size(); ++d) {
      coords[d] = rem / strides[d];
      rem %= strides[d];
    }
    V value;
    if constexpr (std::is_same_v<V, double>) {
      value = DrawValue(rng, integer_values);
    } else {
      value = V(DrawValue(rng, integer_values), DrawValue(rng, integer_values));
    }
    if (value == V(0)) continue;
    (void)tensor.Append(coords, value);
  }
  return tensor;
}

void MaterializeTensors(Rng* rng, EinsumInstance* instance,
                        const Extents& extents, double density) {
  // Integer-valued instances make every oracle's arithmetic exact; they
  // separate true logic bugs from floating-point accumulation noise.
  const bool integer_values = rng->Bernoulli(0.35);
  for (const Term& term : instance->spec.inputs) {
    Shape shape;
    for (Label c : term) shape.push_back(extents.at(c));
    if (instance->complex_values) {
      instance->complex_tensors.push_back(
          DrawTensor<std::complex<double>>(rng, shape, density,
                                           integer_values));
    } else {
      instance->real_tensors.push_back(
          DrawTensor<double>(rng, shape, density, integer_values));
    }
  }
}

// A long matrix chain: hundreds of distinct labels, two per operand. The
// joint index space is astronomically large, so the differential runner
// skips the brute-force oracle and cross-checks the engines against each
// other (pairwise contraction keeps every intermediate tiny).
EinsumInstance DrawChain(Rng* rng, const GeneratorOptions& options) {
  EinsumInstance instance;
  instance.complex_values = rng->Bernoulli(options.complex_probability);
  const int length = static_cast<int>(
      rng->UniformInt(options.chain_min_length, options.chain_max_length));
  Extents extents;
  for (int t = 0; t <= length; ++t) {
    extents[kChainBase + t] = rng->Bernoulli(0.15) ? 1 : 2;
  }
  for (int t = 0; t < length; ++t) {
    instance.spec.inputs.push_back(
        Term{kChainBase + t, static_cast<Label>(kChainBase + t + 1)});
  }
  instance.spec.output =
      Term{kChainBase, static_cast<Label>(kChainBase + length)};
  // Dense-ish chains keep the product from collapsing to all zeros.
  MaterializeTensors(rng, &instance, extents, 0.9);
  return instance;
}

}  // namespace

EinsumInstance GenerateInstance(Rng* rng, const GeneratorOptions& options) {
  if (rng->Bernoulli(options.chain_probability)) {
    return DrawChain(rng, options);
  }

  EinsumInstance instance;
  instance.complex_values = rng->Bernoulli(options.complex_probability);

  // Label pool: mostly ASCII letters, occasionally wide labels to exercise
  // the programmatic (beyond-52-letter) spec path on small expressions too.
  const int pool_size = 6;
  const bool wide_pool = rng->Bernoulli(0.10);
  std::vector<Label> pool;
  for (int k = 0; k < pool_size; ++k) {
    pool.push_back(wide_pool ? static_cast<Label>(kWidePoolBase + k)
                             : static_cast<Label>('a' + k));
  }

  // Draw the input terms; repeated labels within a term (diagonals) and
  // shared labels across terms (joins/batch indices) arise naturally.
  const int operands = static_cast<int>(
      rng->UniformInt(options.min_operands, options.max_operands));
  Term used;
  for (int t = 0; t < operands; ++t) {
    const int rank =
        static_cast<int>(rng->UniformInt(t == 0 ? 1 : 0, options.max_rank));
    Term term;
    for (int d = 0; d < rank; ++d) {
      term.push_back(pool[rng->UniformInt(0, pool_size - 1)]);
    }
    for (Label c : term) {
      if (used.find(c) == Term::npos) used.push_back(c);
    }
    instance.spec.inputs.push_back(std::move(term));
  }

  // Extents, capped so the joint index space stays brute-forceable. Size-1
  // and size-0 extents cover broadcasting-adjacent and empty-tensor
  // degeneracies.
  Extents extents;
  int64_t space = 1;
  for (Label c : used) {
    int64_t extent;
    if (rng->Bernoulli(options.zero_extent_probability)) {
      extent = 0;
    } else if (rng->Bernoulli(options.one_extent_probability)) {
      extent = 1;
    } else {
      extent = rng->UniformInt(2, options.max_extent);
    }
    if (extent > 0 && space * extent > options.max_joint_space) extent = 1;
    if (extent > 0) space *= extent;
    extents[c] = extent;
  }

  // Output: a random duplicate-free subset of the used labels, in random
  // order (the SQL result column order follows it).
  Term output;
  for (Label c : used) {
    if (rng->Bernoulli(0.4)) output.push_back(c);
  }
  Shuffle(rng, &output);
  instance.spec.output = std::move(output);

  MaterializeTensors(rng, &instance, extents, options.density);
  return instance;
}

}  // namespace einsql::testing
