#ifndef EINSQL_TESTING_INSTANCE_H_
#define EINSQL_TESTING_INSTANCE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/format.h"
#include "tensor/coo.h"

namespace einsql::testing {

/// One concrete Einstein summation test case: a spec plus fully materialized
/// operand tensors (real or complex). This is the unit the fuzzer generates,
/// the differential runner checks, the shrinker minimizes, and the corpus
/// stores.
struct EinsumInstance {
  /// Optional corpus identifier (diagnostics only).
  std::string name;
  /// The expression. May use labels beyond the 52-letter alphabet; such
  /// labels render as "#<value>" (see TermToString).
  EinsumSpec spec;
  /// Exactly one of the two tensor lists is populated, selected by
  /// `complex_values`.
  bool complex_values = false;
  std::vector<CooTensor> real_tensors;
  std::vector<ComplexCooTensor> complex_tensors;

  int num_operands() const {
    return static_cast<int>(complex_values ? complex_tensors.size()
                                           : real_tensors.size());
  }

  /// Operand shapes, in operand order.
  std::vector<Shape> shapes() const;

  /// Total stored entries across all operands.
  int64_t total_nnz() const;

  /// Product of the extents of all distinct index labels — the size of the
  /// joint index space the brute-force oracle iterates (0 when any label is
  /// degenerate).
  double joint_space() const;

  /// Checks internal consistency: spec arity matches the tensor count,
  /// shapes are rank-compatible with the terms, and shared labels agree on
  /// extents.
  Status Validate() const;

  /// One-line human-readable summary: spec, shapes, dtype, nnz.
  std::string DebugString() const;

  /// Serializes to a single line of the corpus format (see corpus.h).
  std::string Serialize() const;

  /// Parses a line produced by Serialize().
  static Result<EinsumInstance> Deserialize(std::string_view line);

  /// Emits a self-contained C++ snippet that rebuilds this instance and
  /// re-runs the differential check — the repro the shrinker attaches to a
  /// minimized failure.
  std::string ToCppSnippet() const;
};

/// Parses a spec string in the extended syntax accepted by corpus files:
/// the modern arrow form where each label is either one ASCII letter or
/// "#<decimal>" for wide labels, e.g. "#1000#1001,#1001->#1000".
Result<EinsumSpec> ParseSpecString(std::string_view text);

/// Renders/parses a shape list in the compact corpus syntax, e.g.
/// "[2,3][3,4][]" ([] is a scalar).
std::string ShapesToString(const std::vector<Shape>& shapes);
Result<std::vector<Shape>> ParseShapesString(std::string_view text);

}  // namespace einsql::testing

#endif  // EINSQL_TESTING_INSTANCE_H_
