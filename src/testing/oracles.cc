#include "testing/oracles.h"

#include <cstring>

#include "backends/minidb_backend.h"
#include "backends/sqlite_backend.h"
#include "common/simd.h"
#include "common/str_util.h"
#include "core/reference.h"

namespace einsql::testing {

namespace {

template <typename V>
Result<Coo<V>> ReferenceEval(const ContractionProgram& program,
                             const std::vector<const Coo<V>*>& tensors,
                             const EinsumOptions& options) {
  std::vector<Dense<V>> dense;
  dense.reserve(tensors.size());
  for (const Coo<V>* t : tensors) {
    EINSQL_ASSIGN_OR_RETURN(Dense<V> d, Dense<V>::FromCoo(*t));
    dense.push_back(std::move(d));
  }
  std::vector<const Dense<V>*> ptrs;
  ptrs.reserve(dense.size());
  for (const Dense<V>& d : dense) ptrs.push_back(&d);
  EINSQL_ASSIGN_OR_RETURN(Dense<V> result,
                          ReferenceEinsum(program.spec, ptrs));
  return result.ToCoo(options.epsilon);
}

// Byte identity for COO tensors: same shape, same coordinate stream, and
// values equal by bit pattern (memcmp), so NaN payloads and signed zeros
// count as differences.
template <typename V>
bool BitIdentical(const Coo<V>& a, const Coo<V>& b, std::string* detail) {
  if (a.shape() != b.shape()) {
    *detail = "shapes differ";
    return false;
  }
  if (a.nnz() != b.nnz()) {
    *detail = StrCat("nnz ", a.nnz(), " vs ", b.nnz());
    return false;
  }
  if (a.raw_coords() != b.raw_coords()) {
    *detail = "coordinate streams differ";
    return false;
  }
  for (int64_t k = 0; k < a.nnz(); ++k) {
    const V va = a.ValueAt(k);
    const V vb = b.ValueAt(k);
    if (std::memcmp(&va, &vb, sizeof(V)) != 0) {
      *detail = StrCat("value bit pattern differs at entry ", k);
      return false;
    }
  }
  return true;
}

template <typename V, typename Fn>
Result<Coo<V>> EvalBothSimdModes(const std::string& name, const Fn& eval) {
  Result<Coo<V>> with_simd = [&] {
    simd::ScopedEnable on(true);
    return eval();
  }();
  Result<Coo<V>> without = [&] {
    simd::ScopedEnable off(false);
    return eval();
  }();
  if (with_simd.ok() != without.ok()) {
    return Status::Internal(StrCat(
        name, ": simd-on ", with_simd.ok() ? "succeeded" : "failed",
        " but simd-off ", without.ok() ? "succeeded" : "failed", " (",
        (with_simd.ok() ? without.status() : with_simd.status()).ToString(),
        ")"));
  }
  if (!with_simd.ok()) return with_simd;
  std::string detail;
  if (!BitIdentical(*with_simd, *without, &detail)) {
    return Status::Internal(
        StrCat(name, ": simd-on and simd-off results are not byte-identical: ",
               detail));
  }
  return with_simd;
}

}  // namespace

SimdInvarianceOracle::SimdInvarianceOracle(std::unique_ptr<Oracle> inner)
    : name_(StrCat("simd-invariance/", inner->name())),
      inner_(std::move(inner)) {}

Result<CooTensor> SimdInvarianceOracle::EvalReal(
    const ContractionProgram& program,
    const std::vector<const CooTensor*>& tensors,
    const EinsumOptions& options) {
  return EvalBothSimdModes<double>(name_, [&] {
    return inner_->EvalReal(program, tensors, options);
  });
}

Result<ComplexCooTensor> SimdInvarianceOracle::EvalComplex(
    const ContractionProgram& program,
    const std::vector<const ComplexCooTensor*>& tensors,
    const EinsumOptions& options) {
  return EvalBothSimdModes<std::complex<double>>(name_, [&] {
    return inner_->EvalComplex(program, tensors, options);
  });
}

bool ReferenceOracle::Supports(const EinsumInstance& instance) const {
  return instance.joint_space() <= max_joint_space_;
}

Result<CooTensor> ReferenceOracle::EvalReal(
    const ContractionProgram& program,
    const std::vector<const CooTensor*>& tensors,
    const EinsumOptions& options) {
  return ReferenceEval(program, tensors, options);
}

Result<ComplexCooTensor> ReferenceOracle::EvalComplex(
    const ContractionProgram& program,
    const std::vector<const ComplexCooTensor*>& tensors,
    const EinsumOptions& options) {
  return ReferenceEval(program, tensors, options);
}

EngineOracle::EngineOracle(std::string name,
                           std::unique_ptr<SqlBackend> backend,
                           bool refuse_out_of_range)
    : name_(std::move(name)),
      backend_(std::move(backend)),
      engine_(std::make_unique<SqlEinsumEngine>(backend_.get())),
      refuse_out_of_range_(refuse_out_of_range) {}

Result<CooTensor> EngineOracle::EvalReal(
    const ContractionProgram& program,
    const std::vector<const CooTensor*>& tensors,
    const EinsumOptions& options) {
  return engine_->RunProgram(program, tensors, options);
}

Result<ComplexCooTensor> EngineOracle::EvalComplex(
    const ContractionProgram& program,
    const std::vector<const ComplexCooTensor*>& tensors,
    const EinsumOptions& options) {
  return engine_->RunComplexProgram(program, tensors, options);
}

std::vector<std::unique_ptr<Oracle>> MakeDefaultOracles(
    const std::string& name_filter) {
  std::vector<std::unique_ptr<Oracle>> oracles;
  // The reference comes first: the runner prefers the earliest successful
  // oracle as the comparison baseline.
  oracles.push_back(std::make_unique<ReferenceOracle>());
  oracles.push_back(std::make_unique<EngineOracle>(
      "dense", std::make_unique<DenseEinsumEngine>()));
  oracles.push_back(std::make_unique<EngineOracle>(
      "sparse", std::make_unique<SparseEinsumEngine>()));

  const minidb::OptimizerMode kModes[] = {
      minidb::OptimizerMode::kNone, minidb::OptimizerMode::kGreedy,
      minidb::OptimizerMode::kAggressive, minidb::OptimizerMode::kExhaustive};
  for (minidb::OptimizerMode mode : kModes) {
    minidb::PlannerOptions planner;
    planner.mode = mode;
    oracles.push_back(std::make_unique<EngineOracle>(
        StrCat("minidb-", minidb::OptimizerModeToString(mode)),
        std::make_unique<MiniDbBackend>(planner),
        /*refuse_out_of_range=*/mode == minidb::OptimizerMode::kExhaustive));
    // The same engine and optimizer level on the column-at-a-time
    // executor: row-vs-vector differential coverage at every plan shape
    // the optimizer levels produce.
    auto vec_backend = std::make_unique<MiniDbBackend>(planner);
    vec_backend->set_vectorized();
    oracles.push_back(std::make_unique<EngineOracle>(
        StrCat("minidb-vec-", minidb::OptimizerModeToString(mode)),
        std::move(vec_backend),
        /*refuse_out_of_range=*/mode == minidb::OptimizerMode::kExhaustive));
  }
  {
    auto backend = std::make_unique<MiniDbBackend>();
    backend->set_threads(4);
    oracles.push_back(std::make_unique<EngineOracle>(
        "minidb-parallel", std::move(backend), /*refuse_out_of_range=*/false));
  }
  {
    // Vectorized + morsel-parallel: batches are real morsels here, so this
    // axis exercises per-morsel batch boundaries and the vectorized
    // accumulator merge.
    auto backend = std::make_unique<MiniDbBackend>();
    backend->set_threads(4);
    backend->set_vectorized();
    oracles.push_back(std::make_unique<EngineOracle>(
        "minidb-vec-parallel", std::move(backend),
        /*refuse_out_of_range=*/false));
  }
  {
    // SIMD bit-identity enforcement on the two SIMD-sensitive engines:
    // the dense engine (blocked-GEMM micro-kernel) and the vectorized
    // MiniDB executor (column kernels). Each instance is evaluated with
    // kernels forced on and forced off; any ulp of difference is a
    // divergence.
    oracles.push_back(
        std::make_unique<SimdInvarianceOracle>(std::make_unique<EngineOracle>(
            "dense", std::make_unique<DenseEinsumEngine>())));
    minidb::PlannerOptions planner;
    planner.mode = minidb::OptimizerMode::kGreedy;
    auto vec_backend = std::make_unique<MiniDbBackend>(planner);
    vec_backend->set_vectorized();
    oracles.push_back(
        std::make_unique<SimdInvarianceOracle>(std::make_unique<EngineOracle>(
            "minidb-vec-greedy", std::move(vec_backend),
            /*refuse_out_of_range=*/false)));
  }
  if (auto sqlite = SqliteBackend::Open(); sqlite.ok()) {
    oracles.push_back(std::make_unique<EngineOracle>(
        "sqlite", std::move(sqlite).value(), /*refuse_out_of_range=*/false));
  }

  if (!name_filter.empty()) {
    const std::vector<std::string> wanted = Split(name_filter, ',');
    std::vector<std::unique_ptr<Oracle>> kept;
    for (auto& oracle : oracles) {
      for (const std::string& piece : wanted) {
        if (!piece.empty() &&
            oracle->name().find(piece) != std::string::npos) {
          kept.push_back(std::move(oracle));
          break;
        }
      }
    }
    return kept;
  }
  return oracles;
}

std::vector<Oracle*> OraclePointers(
    const std::vector<std::unique_ptr<Oracle>>& oracles) {
  std::vector<Oracle*> ptrs;
  ptrs.reserve(oracles.size());
  for (const auto& oracle : oracles) ptrs.push_back(oracle.get());
  return ptrs;
}

}  // namespace einsql::testing
