#include "testing/oracles.h"

#include "backends/minidb_backend.h"
#include "backends/sqlite_backend.h"
#include "common/str_util.h"
#include "core/reference.h"

namespace einsql::testing {

namespace {

template <typename V>
Result<Coo<V>> ReferenceEval(const ContractionProgram& program,
                             const std::vector<const Coo<V>*>& tensors,
                             const EinsumOptions& options) {
  std::vector<Dense<V>> dense;
  dense.reserve(tensors.size());
  for (const Coo<V>* t : tensors) {
    EINSQL_ASSIGN_OR_RETURN(Dense<V> d, Dense<V>::FromCoo(*t));
    dense.push_back(std::move(d));
  }
  std::vector<const Dense<V>*> ptrs;
  ptrs.reserve(dense.size());
  for (const Dense<V>& d : dense) ptrs.push_back(&d);
  EINSQL_ASSIGN_OR_RETURN(Dense<V> result,
                          ReferenceEinsum(program.spec, ptrs));
  return result.ToCoo(options.epsilon);
}

}  // namespace

bool ReferenceOracle::Supports(const EinsumInstance& instance) const {
  return instance.joint_space() <= max_joint_space_;
}

Result<CooTensor> ReferenceOracle::EvalReal(
    const ContractionProgram& program,
    const std::vector<const CooTensor*>& tensors,
    const EinsumOptions& options) {
  return ReferenceEval(program, tensors, options);
}

Result<ComplexCooTensor> ReferenceOracle::EvalComplex(
    const ContractionProgram& program,
    const std::vector<const ComplexCooTensor*>& tensors,
    const EinsumOptions& options) {
  return ReferenceEval(program, tensors, options);
}

EngineOracle::EngineOracle(std::string name,
                           std::unique_ptr<SqlBackend> backend,
                           bool refuse_out_of_range)
    : name_(std::move(name)),
      backend_(std::move(backend)),
      engine_(std::make_unique<SqlEinsumEngine>(backend_.get())),
      refuse_out_of_range_(refuse_out_of_range) {}

Result<CooTensor> EngineOracle::EvalReal(
    const ContractionProgram& program,
    const std::vector<const CooTensor*>& tensors,
    const EinsumOptions& options) {
  return engine_->RunProgram(program, tensors, options);
}

Result<ComplexCooTensor> EngineOracle::EvalComplex(
    const ContractionProgram& program,
    const std::vector<const ComplexCooTensor*>& tensors,
    const EinsumOptions& options) {
  return engine_->RunComplexProgram(program, tensors, options);
}

std::vector<std::unique_ptr<Oracle>> MakeDefaultOracles(
    const std::string& name_filter) {
  std::vector<std::unique_ptr<Oracle>> oracles;
  // The reference comes first: the runner prefers the earliest successful
  // oracle as the comparison baseline.
  oracles.push_back(std::make_unique<ReferenceOracle>());
  oracles.push_back(std::make_unique<EngineOracle>(
      "dense", std::make_unique<DenseEinsumEngine>()));
  oracles.push_back(std::make_unique<EngineOracle>(
      "sparse", std::make_unique<SparseEinsumEngine>()));

  const minidb::OptimizerMode kModes[] = {
      minidb::OptimizerMode::kNone, minidb::OptimizerMode::kGreedy,
      minidb::OptimizerMode::kAggressive, minidb::OptimizerMode::kExhaustive};
  for (minidb::OptimizerMode mode : kModes) {
    minidb::PlannerOptions planner;
    planner.mode = mode;
    oracles.push_back(std::make_unique<EngineOracle>(
        StrCat("minidb-", minidb::OptimizerModeToString(mode)),
        std::make_unique<MiniDbBackend>(planner),
        /*refuse_out_of_range=*/mode == minidb::OptimizerMode::kExhaustive));
    // The same engine and optimizer level on the column-at-a-time
    // executor: row-vs-vector differential coverage at every plan shape
    // the optimizer levels produce.
    auto vec_backend = std::make_unique<MiniDbBackend>(planner);
    vec_backend->set_vectorized();
    oracles.push_back(std::make_unique<EngineOracle>(
        StrCat("minidb-vec-", minidb::OptimizerModeToString(mode)),
        std::move(vec_backend),
        /*refuse_out_of_range=*/mode == minidb::OptimizerMode::kExhaustive));
  }
  {
    auto backend = std::make_unique<MiniDbBackend>();
    backend->set_threads(4);
    oracles.push_back(std::make_unique<EngineOracle>(
        "minidb-parallel", std::move(backend), /*refuse_out_of_range=*/false));
  }
  {
    // Vectorized + morsel-parallel: batches are real morsels here, so this
    // axis exercises per-morsel batch boundaries and the vectorized
    // accumulator merge.
    auto backend = std::make_unique<MiniDbBackend>();
    backend->set_threads(4);
    backend->set_vectorized();
    oracles.push_back(std::make_unique<EngineOracle>(
        "minidb-vec-parallel", std::move(backend),
        /*refuse_out_of_range=*/false));
  }
  if (auto sqlite = SqliteBackend::Open(); sqlite.ok()) {
    oracles.push_back(std::make_unique<EngineOracle>(
        "sqlite", std::move(sqlite).value(), /*refuse_out_of_range=*/false));
  }

  if (!name_filter.empty()) {
    const std::vector<std::string> wanted = Split(name_filter, ',');
    std::vector<std::unique_ptr<Oracle>> kept;
    for (auto& oracle : oracles) {
      for (const std::string& piece : wanted) {
        if (!piece.empty() &&
            oracle->name().find(piece) != std::string::npos) {
          kept.push_back(std::move(oracle));
          break;
        }
      }
    }
    return kept;
  }
  return oracles;
}

std::vector<Oracle*> OraclePointers(
    const std::vector<std::unique_ptr<Oracle>>& oracles) {
  std::vector<Oracle*> ptrs;
  ptrs.reserve(oracles.size());
  for (const auto& oracle : oracles) ptrs.push_back(oracle.get());
  return ptrs;
}

}  // namespace einsql::testing
