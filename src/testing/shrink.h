#ifndef EINSQL_TESTING_SHRINK_H_
#define EINSQL_TESTING_SHRINK_H_

#include <functional>

#include "testing/instance.h"

namespace einsql::testing {

/// Predicate re-checking a candidate instance; returns true while the
/// failure still reproduces. The fuzzer passes a closure re-running the
/// differential check; unit tests pass synthetic predicates.
using StillFailsFn = std::function<bool(const EinsumInstance&)>;

struct ShrinkOptions {
  /// Upper bound on predicate invocations (each one may re-run the whole
  /// oracle battery, so the budget is the shrinker's time box).
  int max_attempts = 600;
};

/// Statistics of one shrink run.
struct ShrinkStats {
  int attempts = 0;   // candidate instances tried
  int accepted = 0;   // transformations that kept the failure alive
};

/// Greedily minimizes a failing instance while `still_fails` holds, trying
/// (in order of impact): dropping whole operands, dropping term axes,
/// shrinking index extents, deleting tensor entries, collapsing values to 1,
/// converting complex instances to real, renaming wide labels to ASCII, and
/// dropping output labels. Every accepted candidate is a valid instance;
/// the original is returned unchanged when nothing smaller still fails.
EinsumInstance ShrinkInstance(const EinsumInstance& failing,
                              const StillFailsFn& still_fails,
                              const ShrinkOptions& options = {},
                              ShrinkStats* stats = nullptr);

}  // namespace einsql::testing

#endif  // EINSQL_TESTING_SHRINK_H_
