#include "testing/corpus.h"

#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace einsql::testing {

Result<std::vector<EinsumInstance>> ParseCorpus(std::string_view text) {
  std::vector<EinsumInstance> instances;
  int line_number = 0;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto instance = EinsumInstance::Deserialize(trimmed);
    if (!instance.ok()) {
      return Status::ParseError("corpus line ", line_number, ": ",
                                instance.status().ToString());
    }
    instances.push_back(std::move(instance).value());
  }
  return instances;
}

Result<std::vector<EinsumInstance>> LoadCorpus(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open corpus file '", path, "'");
  std::ostringstream content;
  content << in.rdbuf();
  return ParseCorpus(content.str());
}

Status SaveCorpus(const std::string& path,
                  const std::vector<EinsumInstance>& instances,
                  const std::string& header_comment) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot write corpus file '", path, "'");
  if (!header_comment.empty()) {
    for (const std::string& line : Split(header_comment, '\n')) {
      out << "# " << line << "\n";
    }
  }
  for (const EinsumInstance& instance : instances) {
    out << instance.Serialize() << "\n";
  }
  out.flush();
  if (!out) return Status::IOError("write to '", path, "' failed");
  return Status::OK();
}

}  // namespace einsql::testing
