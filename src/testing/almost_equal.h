#ifndef EINSQL_TESTING_ALMOST_EQUAL_H_
#define EINSQL_TESTING_ALMOST_EQUAL_H_

#include <cmath>
#include <complex>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>

#include "tensor/coo.h"
#include "tensor/dense.h"

namespace einsql::testing {

/// Centralized numeric comparison policy for every differential and unit
/// test in the repository. Two floating point pipelines that sum the same
/// products in different orders (SQL GROUP BY vs. dense GEMM vs. sparse
/// hash aggregation) legitimately differ by a few ULPs per accumulation —
/// and by far more after catastrophic cancellation — so tests must never
/// hand-roll a bare epsilon. Values compare equal when ANY of the three
/// criteria holds:
///   - absolute:  |a - b| <= abs_tolerance   (anchors comparisons near 0)
///   - relative:  |a - b| <= rel_tolerance * max(|a|, |b|)
///   - ULP:       a and b are within max_ulps representable doubles
struct Tolerance {
  double abs_tolerance = 1e-9;
  double rel_tolerance = 1e-9;
  int64_t max_ulps = 16;
};

/// Distance in representable doubles between a and b; a large sentinel for
/// NaNs or mismatched signs (ULP distance across 0 is meaningless — the
/// absolute criterion covers that region).
inline int64_t UlpDistance(double a, double b) {
  constexpr int64_t kFar = std::numeric_limits<int64_t>::max();
  if (std::isnan(a) || std::isnan(b)) return kFar;
  if (a == b) return 0;  // covers +0 vs -0
  if (std::signbit(a) != std::signbit(b)) return kFar;
  int64_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  return ia > ib ? ia - ib : ib - ia;
}

/// True iff `a` and `b` agree under `tolerance` (see the criteria above).
inline bool AlmostEqual(double a, double b, const Tolerance& tolerance = {}) {
  if (a == b) return true;
  if (std::isnan(a) || std::isnan(b)) return false;
  if (std::isinf(a) || std::isinf(b)) return false;  // == handled both-inf
  const double diff = std::abs(a - b);
  if (diff <= tolerance.abs_tolerance) return true;
  const double scale = std::max(std::abs(a), std::abs(b));
  if (diff <= tolerance.rel_tolerance * scale) return true;
  return UlpDistance(a, b) <= tolerance.max_ulps;
}

/// Complex values agree iff both components do.
inline bool AlmostEqual(const std::complex<double>& a,
                        const std::complex<double>& b,
                        const Tolerance& tolerance = {}) {
  return AlmostEqual(a.real(), b.real(), tolerance) &&
         AlmostEqual(a.imag(), b.imag(), tolerance);
}

/// Entry-wise COO comparison under `tolerance`: shapes must match exactly;
/// coordinates absent from one side compare as zero. When `mismatch` is
/// non-null and the tensors differ, it receives a human-readable description
/// of the first diverging entry.
template <typename V>
bool AllCloseTol(const Coo<V>& a, const Coo<V>& b,
                 const Tolerance& tolerance = {},
                 std::string* mismatch = nullptr) {
  auto describe = [&](const std::vector<int64_t>& coords, V va, V vb) {
    if (mismatch == nullptr) return;
    std::string at = "(";
    for (size_t d = 0; d < coords.size(); ++d) {
      if (d > 0) at += ",";
      at += std::to_string(coords[d]);
    }
    at += ")";
    std::ostringstream os;
    os << "value mismatch at " << at << ": " << va << " vs " << vb;
    *mismatch = os.str();
  };
  if (a.shape() != b.shape()) {
    if (mismatch != nullptr) {
      *mismatch = "shape mismatch: " + ShapeToString(a.shape()) + " vs " +
                  ShapeToString(b.shape());
    }
    return false;
  }
  Coo<V> ca = a, cb = b;
  ca.Coalesce();
  cb.Coalesce();
  const int r = ca.rank();
  auto cmp = [&](int64_t ka, int64_t kb) {
    for (int d = 0; d < r; ++d) {
      const int64_t va = ca.raw_coords()[ka * r + d];
      const int64_t vb = cb.raw_coords()[kb * r + d];
      if (va != vb) return va < vb ? -1 : 1;
    }
    return 0;
  };
  int64_t ia = 0, ib = 0;
  while (ia < ca.nnz() && ib < cb.nnz()) {
    const int c = cmp(ia, ib);
    if (c == 0) {
      if (!AlmostEqual(ca.ValueAt(ia), cb.ValueAt(ib), tolerance)) {
        describe(ca.CoordsAt(ia), ca.ValueAt(ia), cb.ValueAt(ib));
        return false;
      }
      ++ia, ++ib;
    } else if (c < 0) {
      if (!AlmostEqual(ca.ValueAt(ia), V(0), tolerance)) {
        describe(ca.CoordsAt(ia), ca.ValueAt(ia), V(0));
        return false;
      }
      ++ia;
    } else {
      if (!AlmostEqual(cb.ValueAt(ib), V(0), tolerance)) {
        describe(cb.CoordsAt(ib), V(0), cb.ValueAt(ib));
        return false;
      }
      ++ib;
    }
  }
  for (; ia < ca.nnz(); ++ia) {
    if (!AlmostEqual(ca.ValueAt(ia), V(0), tolerance)) {
      describe(ca.CoordsAt(ia), ca.ValueAt(ia), V(0));
      return false;
    }
  }
  for (; ib < cb.nnz(); ++ib) {
    if (!AlmostEqual(cb.ValueAt(ib), V(0), tolerance)) {
      describe(cb.CoordsAt(ib), V(0), cb.ValueAt(ib));
      return false;
    }
  }
  return true;
}

/// Element-wise dense comparison under the same policy. When `mismatch` is
/// non-null and the tensors differ, it receives the flat index and values of
/// the first diverging element.
template <typename V>
bool AllCloseTol(const Dense<V>& a, const Dense<V>& b,
                 const Tolerance& tolerance = {},
                 std::string* mismatch = nullptr) {
  if (a.shape() != b.shape()) {
    if (mismatch != nullptr) {
      *mismatch = "shape mismatch: " + ShapeToString(a.shape()) + " vs " +
                  ShapeToString(b.shape());
    }
    return false;
  }
  for (int64_t i = 0; i < a.size(); ++i) {
    if (!AlmostEqual(a[i], b[i], tolerance)) {
      if (mismatch != nullptr) {
        std::ostringstream os;
        os << "value mismatch at flat index " << i << ": " << a[i] << " vs "
           << b[i];
        *mismatch = os.str();
      }
      return false;
    }
  }
  return true;
}

}  // namespace einsql::testing

#endif  // EINSQL_TESTING_ALMOST_EQUAL_H_
