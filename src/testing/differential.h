#ifndef EINSQL_TESTING_DIFFERENTIAL_H_
#define EINSQL_TESTING_DIFFERENTIAL_H_

#include <string>
#include <vector>

#include "testing/almost_equal.h"
#include "testing/oracles.h"

namespace einsql::testing {

/// Configuration of one differential check.
struct DifferentialOptions {
  /// Contraction-path algorithms to cross-check. Paths that cannot handle
  /// the operand count (kOptimal/kBranch beyond 16 operands) are skipped
  /// automatically.
  std::vector<PathAlgorithm> paths = {
      PathAlgorithm::kNaive,   PathAlgorithm::kGreedy,
      PathAlgorithm::kElimination, PathAlgorithm::kBranch,
      PathAlgorithm::kOptimal, PathAlgorithm::kAuto};
  /// Numeric agreement policy.
  Tolerance tolerance;
  /// Also run every oracle on the flat (non-decomposed, §3.2) query for the
  /// first path. Skipped for complex instances with more than two operands,
  /// where the flat form is undefined.
  bool check_flat = true;
  /// Metamorphic properties on top of cross-oracle agreement:
  /// operand-permutation invariance, scaling linearity, and (for complex
  /// instances) conjugation symmetry.
  bool metamorphic = true;
};

/// One observed violation.
struct Divergence {
  /// Oracle that disagreed (or failed), e.g. "minidb-aggressive".
  std::string oracle;
  /// What it was compared against, e.g. "reference".
  std::string baseline;
  /// "value" | "status" | "plan" | "metamorphic-permutation" |
  /// "metamorphic-scaling" | "metamorphic-conjugation" | "invalid-instance"
  std::string kind;
  /// Human-readable specifics (mismatching entry, error message, ...).
  std::string detail;
  /// The path algorithm in effect.
  PathAlgorithm path = PathAlgorithm::kAuto;
};

/// Outcome of checking one instance.
struct CheckReport {
  /// Number of oracle evaluations performed.
  int evaluations = 0;
  /// Oracle x path combinations skipped (unsupported or documented refusal).
  int skips = 0;
  std::vector<Divergence> divergences;

  bool ok() const { return divergences.empty(); }
  /// Multi-line description of every divergence.
  std::string summary() const;
};

/// Evaluates `instance` through every oracle under every path algorithm,
/// asserts toleranced agreement, and checks the metamorphic properties.
CheckReport CheckInstance(const EinsumInstance& instance,
                          const std::vector<Oracle*>& oracles,
                          const DifferentialOptions& options = {});

}  // namespace einsql::testing

#endif  // EINSQL_TESTING_DIFFERENTIAL_H_
